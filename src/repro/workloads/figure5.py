"""The ten-shot example clip of Figure 5 / Table 3.

Shots are labeled A, B, A1, B1, C, A2, C1, D, D1, D2 — equal prefixes
mean related (shared scene).  Frame ranges follow Table 3 exactly
(1-75, 76-100, ..., 551-625; 625 frames total), so Table 3 and the
Figure 6 construction walkthrough can be regenerated verbatim.

Relatedness engineering (see the builder's expected trace):

* A/A1/A2 and B/B1 and C/C1 reuse one world each with small color
  shifts (within the 10 % RELATIONSHIP tolerance) and are never cut
  adjacently, so detectability is not at stake;
* D, D1, D2 *are* adjacent.  They film one high-contrast gradient
  world from different vantage points: D sits at the left, D2 at the
  right (instantaneous signs > 10 % apart → the cuts are detectable),
  while D1 pans from right to left across both positions — so D1 is
  RELATIONSHIP-related to D and D2 even though D and D2 are not
  related to each other.  This reproduces the paper's Figure 6(g)
  narrative where shots #9 and #10 relate to their *immediate
  predecessors*.
"""

from __future__ import annotations

from ..synth.camera import CameraSpec
from ..synth.objects import ObjectSpec
from ..synth.scripts import ClipScript, GroundTruth, ScriptedShot, render_clip
from ..synth.shotgen import ShotSpec
from ..synth.textures import BackgroundSpec
from ..video.clip import VideoClip

__all__ = ["FIGURE5_GROUPS", "FIGURE5_SHOT_RANGES", "make_figure5_clip"]

#: Shot labels in clip order (Fig. 5).
FIGURE5_GROUPS: tuple[str, ...] = (
    "A", "B", "A", "B", "C", "A", "C", "D", "D", "D",
)

#: 1-based inclusive frame ranges per shot (Table 3).
FIGURE5_SHOT_RANGES: tuple[tuple[int, int], ...] = (
    (1, 75), (76, 100), (101, 140), (141, 170), (171, 290),
    (291, 350), (351, 415), (416, 495), (496, 550), (551, 625),
)

# One distinct world per scene letter, colored so that no sign any
# shot can produce comes within the 10 % tolerance of another scene's.
_WORLD_A = BackgroundSpec(kind="flat", base_color=(200.0, 150.0, 120.0))
_WORLD_B = BackgroundSpec(kind="flat", base_color=(60.0, 110.0, 220.0))
_WORLD_C = BackgroundSpec(kind="flat", base_color=(40.0, 200.0, 90.0))
# The D scene: three *takes* of one set, each a blotch world with the
# same palette but a different arrangement (different camera angle on
# the same scene — similar color statistics, different structure, so
# the stage-3 shift matcher cannot bridge the cuts translationally).
# Lighting profiles separate the instantaneous signs at each cut while
# the steady-state signs coincide, keeping the takes
# RELATIONSHIP-related.
def _d_world(seed: int) -> BackgroundSpec:
    return BackgroundSpec(
        kind="blotches",
        base_color=(150.0, 70.0, 150.0),
        accent_color=(110.0, 40.0, 110.0),
        detail_seed=seed,
    )

_VARIANT_SHIFTS: tuple[tuple[float, float, float], ...] = (
    (0.0, 0.0, 0.0),
    (9.0, -7.0, 5.0),
    (-8.0, 8.0, -6.0),
)

_D_MARGIN = 64


def _actor(rows: int, cols: int, variant: int) -> ObjectSpec:
    return ObjectSpec(
        shape="ellipse",
        color=(210.0, 175.0, 145.0),
        size=(rows * 0.3, rows * 0.18),
        start=(rows * 0.68, cols * (0.35 + 0.1 * variant)),
        velocity=(0.0, 0.0),
        wobble=2.0,
        wobble_period=7,
    )


def _static_shot(
    world: BackgroundSpec,
    variant: int,
    n_frames: int,
    rows: int,
    cols: int,
    seed: int,
    group: str,
) -> ScriptedShot:
    background = world.with_color_shift(_VARIANT_SHIFTS[variant])
    spec = ShotSpec(
        n_frames=n_frames,
        background=background,
        camera=CameraSpec(kind="static", jitter=0.3, jitter_seed=seed),
        objects=(_actor(rows, cols, variant),),
        noise=1.0,
        noise_seed=seed,
    )
    return ScriptedShot(spec=spec, group=group)


def _d_shot(
    variant: int, n_frames: int, rows: int, cols: int, seed: int
) -> ScriptedShot:
    if variant == 0:  # D: steady, lights surge at the very end
        profile = ((0, 0.0), (n_frames - 16, 0.0), (n_frames - 1, 40.0))
    elif variant == 1:  # D1: opens dark, settles to steady
        profile = ((0, -40.0), (14, 0.0), (n_frames - 1, 0.0))
    else:  # D2: opens bright, settles to steady
        profile = ((0, 45.0), (14, 0.0), (n_frames - 1, 0.0))
    spec = ShotSpec(
        n_frames=n_frames,
        background=_d_world(seed=100 + variant),
        camera=CameraSpec(kind="static", jitter=0.3, jitter_seed=seed),
        objects=(_actor(rows, cols, variant),),
        noise=1.0,
        noise_seed=seed,
        margin=_D_MARGIN,
        light_profile=profile,
    )
    return ScriptedShot(spec=spec, group="D")


def make_figure5_clip(rows: int = 120, cols: int = 160) -> tuple[VideoClip, GroundTruth]:
    """Render the Figure 5 clip with Table 3's exact shot lengths."""
    worlds = {"A": _WORLD_A, "B": _WORLD_B, "C": _WORLD_C}
    variant_counts: dict[str, int] = {}
    scripted: list[ScriptedShot] = []
    for label, (start, end) in zip(FIGURE5_GROUPS, FIGURE5_SHOT_RANGES):
        variant = variant_counts.get(label, 0)
        variant_counts[label] = variant + 1
        n_frames = end - start + 1
        if label == "D":
            scripted.append(_d_shot(variant, n_frames, rows, cols, seed=start))
        else:
            scripted.append(
                _static_shot(
                    worlds[label], variant, n_frames, rows, cols,
                    seed=start, group=label,
                )
            )
    script = ClipScript(
        name="figure5", shots=tuple(scripted), rows=rows, cols=cols, fps=3.0
    )
    return render_clip(script)
