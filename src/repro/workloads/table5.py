"""The 22-clip, six-category detection suite of Table 5.

Each paper clip gets a synthetic stand-in generated from the genre
model matching its type, with the paper's metadata (duration, shot
count, reported recall/precision) carried along so the experiment
driver can print a paper-vs-measured table.

Shot counts are scaled (default 20 %) to keep the full suite runnable
in well under a minute; pass ``scale=1.0`` for paper-scale clip sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import WorkloadError
from ..synth.genres import GENRE_MODELS
from ..synth.scripts import GroundTruth
from ..video.clip import VideoClip

__all__ = ["Table5Clip", "TABLE5_CLIPS", "generate_table5_clip"]


@dataclass(frozen=True, slots=True)
class Table5Clip:
    """One row of Table 5, with generation parameters.

    Attributes:
        name: the paper's clip name.
        category: the paper's six-way type grouping.
        genre: key into :data:`~repro.synth.genres.GENRE_MODELS`.
        paper_duration: the paper's "min:sec" duration label.
        paper_shot_changes: the paper's shot-change count.
        paper_recall, paper_precision: the paper's reported numbers.
        seed: generation seed (fixed per clip for determinism).
    """

    name: str
    category: str
    genre: str
    paper_duration: str
    paper_shot_changes: int
    paper_recall: float
    paper_precision: float
    seed: int

    def n_shots(self, scale: float) -> int:
        """Scaled shot count (shot changes + 1), at least 8 shots."""
        return max(8, round((self.paper_shot_changes + 1) * scale))


def _clip(
    name: str,
    category: str,
    genre: str,
    duration: str,
    changes: int,
    recall: float,
    precision: float,
    seed: int,
) -> Table5Clip:
    if genre not in GENRE_MODELS:
        raise WorkloadError(f"unknown genre model {genre!r} for clip {name!r}")
    return Table5Clip(
        name=name,
        category=category,
        genre=genre,
        paper_duration=duration,
        paper_shot_changes=changes,
        paper_recall=recall,
        paper_precision=precision,
        seed=seed,
    )


#: The full 22-clip suite in the paper's row order.
TABLE5_CLIPS: tuple[Table5Clip, ...] = (
    _clip("Silk Stalkings (Drama)", "TV Programs", "drama", "10:24", 95, 0.97, 0.87, 501),
    _clip("Scooby Doo Show (Cartoon)", "TV Programs", "cartoon", "11:38", 106, 0.87, 0.75, 502),
    _clip("Friends (Sitcom)", "TV Programs", "sitcom", "10:22", 116, 0.88, 0.75, 503),
    _clip("Chicago Hope (Drama)", "TV Programs", "drama", "9:47", 156, 0.96, 0.84, 504),
    _clip("Star Trek (Deep Space Nine)", "TV Programs", "scifi", "12:27", 111, 0.78, 0.81, 505),
    _clip("All My Children (Soap Opera)", "TV Programs", "soap", "5:44", 50, 0.89, 0.81, 506),
    _clip("Flintstones (Cartoon)", "TV Programs", "cartoon", "6:09", 48, 0.89, 0.84, 507),
    _clip("Jerry Springer (Talk Show)", "TV Programs", "talk_show", "4:58", 107, 0.77, 0.82, 508),
    _clip("TV Commercials", "TV Programs", "commercials", "31:25", 967, 0.95, 0.93, 509),
    _clip("National (NBC)", "News", "news", "14:45", 202, 0.95, 0.93, 510),
    _clip("Local (ABC)", "News", "news", "30:27", 176, 0.94, 0.91, 511),
    _clip("Brave Heart", "Movies", "movie", "10:03", 246, 0.90, 0.81, 512),
    _clip("ATF", "Movies", "movie", "11:52", 224, 0.94, 0.90, 513),
    _clip("Simon Birch", "Movies", "movie", "11:08", 164, 0.95, 0.83, 514),
    _clip("Wag the Dog", "Movies", "movie", "11:01", 103, 0.98, 0.81, 515),
    _clip("Tennis (1999 U.S. Open)", "Sports Events", "sports", "14:20", 114, 0.91, 0.90, 516),
    _clip("Mountain Bike Race", "Sports Events", "sports", "15:12", 143, 0.96, 0.95, 517),
    _clip("Football", "Sports Events", "sports", "21:26", 163, 0.94, 0.88, 518),
    _clip("Today's Vietnam", "Documentaries", "documentary", "10:29", 93, 0.89, 0.84, 519),
    _clip("For All Mankind", "Documentaries", "documentary", "16:50", 127, 0.90, 0.81, 520),
    _clip("Kobe Bryant", "Music Videos", "music_video", "3:53", 53, 0.86, 0.78, 521),
    _clip("Alabama Song", "Music Videos", "music_video", "4:24", 65, 0.89, 0.84, 522),
)


def generate_table5_clip(
    clip: Table5Clip, scale: float = 0.2
) -> tuple[VideoClip, GroundTruth]:
    """Render the synthetic stand-in for one Table 5 row."""
    from ..synth.genres import generate_genre_clip

    if scale <= 0:
        raise WorkloadError(f"scale must be > 0, got {scale}")
    return generate_genre_clip(
        GENRE_MODELS[clip.genre],
        name=clip.name,
        n_shots=clip.n_shots(scale),
        seed=clip.seed,
    )
