"""A movie-trailer workload: title cards, content, credits.

Combines every synthetic shot type in one clip shaped like a theatrical
trailer: a studio title card fades in content, archetype shots follow
with dissolves, interstitial cards punctuate, and a credit roll closes.
This is the integration workload for the typographic shot types — it
drives the detector, the scene-tree builder, and the motion classifier
over material no other workload contains.
"""

from __future__ import annotations

import numpy as np

from ..synth.archetypes import (
    ARCHETYPE_CLOSEUP,
    ARCHETYPE_MOVING,
    closeup_talking_shot,
    moving_object_shot,
    two_people_distant_shot,
    ARCHETYPE_TWO_PEOPLE,
)
from ..synth.scripts import ClipScript, GroundTruth, ScriptedShot, render_clip
from ..synth.titles import rolling_credits_shot, title_card_shot
from ..video.clip import VideoClip

__all__ = ["make_trailer_clip"]


def make_trailer_clip(
    title: str = "THE LONG TAKE",
    seed: int = 404,
    rows: int = 120,
    cols: int = 160,
) -> tuple[VideoClip, GroundTruth]:
    """Render the trailer; groups label cards, content, and credits."""
    rng = np.random.default_rng(seed)
    scripted = [
        ScriptedShot(
            spec=title_card_shot(f"{title}|COMING SOON", n_frames=10, noise_seed=seed),
            group="card",
        ),
        ScriptedShot(
            spec=closeup_talking_shot(rng, n_frames=14, rows=rows, cols=cols),
            group="scene-1",
            archetype=ARCHETYPE_CLOSEUP,
            transition="fade",
            transition_frames=3,
        ),
        ScriptedShot(
            spec=moving_object_shot(rng, n_frames=14, rows=rows, cols=cols),
            group="scene-2",
            archetype=ARCHETYPE_MOVING,
            transition="dissolve",
            transition_frames=3,
        ),
        ScriptedShot(
            spec=title_card_shot("THIS SUMMER", n_frames=8, noise_seed=seed + 1),
            group="card",
        ),
        ScriptedShot(
            spec=two_people_distant_shot(rng, n_frames=14, rows=rows, cols=cols),
            group="scene-3",
            archetype=ARCHETYPE_TWO_PEOPLE,
        ),
        ScriptedShot(
            spec=rolling_credits_shot(
                [f"{role} - PERSON {k}" for k, role in enumerate(
                    ("DIRECTOR", "WRITER", "PRODUCER", "EDITOR", "CAMERA",
                     "SOUND", "GRIP", "GAFFER", "CASTING", "MUSIC",
                     "COSTUME", "MAKEUP", "STUNTS", "CATERING", "THANKS",
                     "DRIVER", "SCOUT", "COLOR", "TITLES", "LEGAL"),
                )],
                n_frames=24,
                noise_seed=seed + 2,
            ),
            group="credits",
            transition="fade",
            transition_frames=3,
        ),
    ]
    script = ClipScript(
        name=f"trailer-{title.lower().replace(' ', '-')}",
        shots=tuple(scripted),
        rows=rows,
        cols=cols,
        fps=3.0,
    )
    return render_clip(script)
