"""Genre/form classification (Sec. 4.1).

The paper answers "are two variance values enough?" by pointing at the
Library of Congress *Moving Image Genre-Form Guide* [26]: 133 genres x
35 forms give at least 4,655 categories, and "if we assume that video
retrieval is performed within one of these 4,655 classes, our indexing
scheme ... should be enough".

We ship a representative subset of the guide's vocabulary (the full
counts are kept as constants for the capacity argument) plus
:class:`VideoCategory`, the classification attached to catalog entries
so queries can be scoped to one category — e.g. the paper classifies
'Brave Heart' as *adventure and biographical feature* and
'Dr. Zhivago' as *adaptation, historical, and romance feature*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CatalogError

__all__ = [
    "GENRES",
    "FORMS",
    "PAPER_GENRE_COUNT",
    "PAPER_FORM_COUNT",
    "PAPER_CATEGORY_COUNT",
    "VideoCategory",
]

#: Counts reported by the paper for the full LoC guide.
PAPER_GENRE_COUNT = 133
PAPER_FORM_COUNT = 35
PAPER_CATEGORY_COUNT = PAPER_GENRE_COUNT * PAPER_FORM_COUNT  # 4655

#: Representative subset of the guide's genre vocabulary.
GENRES: tuple[str, ...] = (
    "adaptation", "adventure", "animal", "aviation", "biographical",
    "buddy", "caper", "chase", "children's", "college", "comedy",
    "crime", "dance", "detective", "disaster", "documentary-genre",
    "domestic", "espionage", "ethnic", "experimental", "fantasy",
    "film noir", "gangster", "historical", "horror", "journalism",
    "jungle", "juvenile delinquency", "legal", "martial arts",
    "medical", "melodrama", "military", "musical", "mystery", "nature",
    "police", "political", "prehistoric", "prison", "religious",
    "romance", "science fiction", "show business", "slapstick",
    "sophisticated comedy", "sports-genre", "survival",
    "thriller", "war", "western", "youth",
)

#: Representative subset of the guide's form vocabulary.
FORMS: tuple[str, ...] = (
    "animation", "anthology", "feature", "serial", "short",
    "television", "television mini-series", "television movie",
    "television pilot", "television series", "trailer", "newsreel",
    "music video-form", "commercial-form", "documentary-form",
)


@dataclass(frozen=True, slots=True)
class VideoCategory:
    """A video's classification: selected genres + selected forms.

    Example:
        >>> VideoCategory(genres=("adventure", "biographical"),
        ...               forms=("feature",)).label
        'adventure and biographical feature'
    """

    genres: tuple[str, ...] = ()
    forms: tuple[str, ...] = field(default=("feature",))

    def __post_init__(self) -> None:
        for genre in self.genres:
            if genre not in GENRES:
                raise CatalogError(f"unknown genre {genre!r}")
        for form in self.forms:
            if form not in FORMS:
                raise CatalogError(f"unknown form {form!r}")
        if not self.forms:
            raise CatalogError("a category needs at least one form")

    @property
    def label(self) -> str:
        """Human-readable classification, paper style."""
        if not self.genres:
            genre_text = ""
        elif len(self.genres) == 1:
            genre_text = self.genres[0] + " "
        elif len(self.genres) == 2:
            genre_text = " and ".join(self.genres) + " "
        else:
            genre_text = (
                ", ".join(self.genres[:-1]) + ", and " + self.genres[-1] + " "
            )
        return genre_text + " ".join(self.forms)

    def overlaps(self, other: "VideoCategory") -> bool:
        """True when the categories share at least one genre and form.

        The retrieval-scoping rule: a query restricted to one category
        considers videos whose classification overlaps it.
        """
        genres_overlap = (
            not self.genres or not other.genres
            or bool(set(self.genres) & set(other.genres))
        )
        forms_overlap = bool(set(self.forms) & set(other.forms))
        return genres_overlap and forms_overlap
