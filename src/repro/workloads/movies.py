"""The two-movie retrieval corpus ('Simon Birch' / 'Wag the Dog').

Table 4 and Figs. 8-10 index two feature films and run
query-by-example retrievals across them.  The stand-ins here mix the
three labeled archetypes (close-up talk, two people at a distance,
moving object over changing background) with unlabeled connective
shots, in movie-like proportions.  Every shot records its archetype in
the clip's ground truth, so retrieval precision is machine-checkable.
"""

from __future__ import annotations

import numpy as np

from ..synth.archetypes import (
    ARCHETYPE_CLOSEUP,
    ARCHETYPE_MOVING,
    ARCHETYPE_TWO_PEOPLE,
    closeup_talking_shot,
    moving_object_shot,
    two_people_distant_shot,
)
from ..synth.camera import CameraSpec
from ..synth.scripts import ClipScript, GroundTruth, ScriptedShot, render_clip
from ..synth.shotgen import ShotSpec
from ..synth.textures import BackgroundSpec
from ..video.clip import VideoClip

__all__ = ["make_movie_corpus", "make_simon_birch", "make_wag_the_dog"]


def _generic_shot(rng: np.random.Generator, n_frames: int) -> ShotSpec:
    """An unlabeled connective shot (establishing views, inserts).

    Slow tilts over mild gradients: a moderate, uniform change in both
    areas — a feature-space zone of its own (``sqrt(Var^BA)`` around
    3-5, ``D^v`` near zero), distinct from all three labeled
    archetypes.
    """
    base = tuple(float(rng.uniform(90, 200)) for _ in range(3))
    accent = tuple(float(np.clip(c - 70, 10, 255)) for c in base)
    background = BackgroundSpec(
        kind="vgradient_bars",
        base_color=base,  # type: ignore[arg-type]
        accent_color=accent,  # type: ignore[arg-type]
        period=int(rng.integers(17, 31)),
        detail_seed=int(rng.integers(1 << 31)),
    )
    return ShotSpec(
        n_frames=n_frames,
        background=background,
        camera=CameraSpec(
            kind="tilt",
            # Fixed total travel (~35 px) so the variance does not
            # scale with the shot's frame count.
            speed=35.0 / n_frames,
            direction=int(rng.choice((-1, 1))),
            jitter=float(rng.uniform(0.2, 0.6)),
            jitter_seed=int(rng.integers(1 << 31)),
        ),
        noise=float(rng.uniform(1.0, 2.5)),
        noise_seed=int(rng.integers(1 << 31)),
        margin=96,
    )


#: Archetype mix per movie: (closeup, two-people, moving, generic).
_MIX = {
    # 'Wag the Dog' is dialogue-heavy; 'Simon Birch' has more action.
    "Wag the Dog": (0.35, 0.25, 0.12, 0.28),
    "Simon Birch": (0.25, 0.20, 0.27, 0.28),
}

_FACTORIES = (
    (ARCHETYPE_CLOSEUP, closeup_talking_shot),
    (ARCHETYPE_TWO_PEOPLE, two_people_distant_shot),
    (ARCHETYPE_MOVING, moving_object_shot),
)


def _make_movie(
    title: str, n_shots: int, seed: int, rows: int, cols: int
) -> tuple[VideoClip, GroundTruth]:
    rng = np.random.default_rng(seed)
    weights = np.asarray(_MIX[title])
    scripted: list[ScriptedShot] = []
    previous_color: tuple[float, float, float] | None = None
    for shot_idx in range(n_shots):
        n_frames = int(rng.integers(10, 22))
        choice = int(rng.choice(4, p=weights / weights.sum()))
        # Resample until the cut is visually decisive: consecutive
        # backgrounds must differ clearly in some channel, or the
        # detector would (legitimately) merge the shots and every
        # archetype label after the merge would slip by one.
        for _ in range(12):
            if choice < 3:
                archetype, factory = _FACTORIES[choice]
                spec = factory(rng, n_frames=n_frames, rows=rows, cols=cols)
            else:
                archetype, spec = None, _generic_shot(rng, n_frames)
            color = spec.background.base_color
            if previous_color is None or max(
                abs(a - b) for a, b in zip(color, previous_color)
            ) > 55:
                break
        previous_color = spec.background.base_color
        scripted.append(
            ScriptedShot(spec=spec, group=f"S{shot_idx}", archetype=archetype)
        )
    script = ClipScript(
        name=title, shots=tuple(scripted), rows=rows, cols=cols, fps=3.0
    )
    return render_clip(script)


def make_wag_the_dog(
    n_shots: int = 40, seed: int = 2000, rows: int = 120, cols: int = 160
) -> tuple[VideoClip, GroundTruth]:
    """The 'Wag the Dog' stand-in (dialogue-heavy mix)."""
    return _make_movie("Wag the Dog", n_shots, seed, rows, cols)


def make_simon_birch(
    n_shots: int = 60, seed: int = 2001, rows: int = 120, cols: int = 160
) -> tuple[VideoClip, GroundTruth]:
    """The 'Simon Birch' stand-in (more action shots)."""
    return _make_movie("Simon Birch", n_shots, seed, rows, cols)


def make_movie_corpus(
    scale: float = 1.0, seed: int = 2000
) -> list[tuple[VideoClip, GroundTruth]]:
    """Both movies, with shot counts scaled by ``scale``.

    The paper's clips had 164 and 103 shots; the default corpus is a
    quarter-scale rendering (60 + 40 shots) that exercises the same
    code paths in seconds.  Pass ``scale=2.7`` for paper-scale counts.
    """
    return [
        make_simon_birch(n_shots=max(4, round(60 * scale)), seed=seed + 1),
        make_wag_the_dog(n_shots=max(4, round(40 * scale)), seed=seed),
    ]
