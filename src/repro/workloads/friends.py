"""A one-minute restaurant conversation (the Figure 7 segment).

The paper's story: "Two women and one man are having a conversation
in a restaurant, and two men come and join them."  The scripted
coverage mirrors sitcom editing: a wide establishing shot of the
table, alternating close-up angles on the speakers, a cut to the
restaurant entrance when the two men arrive, then back to (now wider)
table coverage.  At 3 fps a minute is 180 frames, split over 12 shots.

Camera angles of one physical location share a background world, so
the scene tree groups them — walking the finished tree level by level
recovers the story, which is exactly the Figure 7 reading.
"""

from __future__ import annotations

from ..synth.camera import CameraSpec
from ..synth.objects import ObjectSpec
from ..synth.scripts import ClipScript, GroundTruth, ScriptedShot, render_clip
from ..synth.shotgen import ShotSpec
from ..synth.textures import BackgroundSpec
from ..video.clip import VideoClip

__all__ = ["make_friends_clip"]

# Camera setups inside the restaurant.  Each angle sees a *different*
# part of the room (wide table vs. the wall behind each speaker vs. the
# entrance).  Colors are chosen so every pair of worlds stays beyond
# the 10 % tolerance in at least one channel at *every* position (the
# table view is a gradient — a wall color inside its color range would
# let the stage-3 shift matcher legitimately bridge the cut), while
# retakes of one angle stay within tolerance.
_TABLE = BackgroundSpec(kind="hgradient", base_color=(185.0, 140.0, 100.0))
_WALL_1 = BackgroundSpec(kind="flat", base_color=(60.0, 40.0, 160.0))
_WALL_2 = BackgroundSpec(kind="flat", base_color=(40.0, 110.0, 50.0))
_ENTRANCE = BackgroundSpec(kind="vgradient", base_color=(225.0, 225.0, 235.0))

_SKIN = (210.0, 175.0, 145.0)


def _person(row: float, col: float, scale: float, seed_phase: int) -> ObjectSpec:
    return ObjectSpec(
        shape="ellipse",
        color=_SKIN,
        size=(scale, scale * 0.6),
        start=(row, col),
        wobble=1.8,
        wobble_period=6 + seed_phase % 4,
    )


def _shot(
    n_frames: int,
    background: BackgroundSpec,
    group: str,
    people: tuple[ObjectSpec, ...],
    seed: int,
) -> ScriptedShot:
    return ScriptedShot(
        spec=ShotSpec(
            n_frames=n_frames,
            background=background,
            camera=CameraSpec(kind="static", jitter=0.4, jitter_seed=seed),
            objects=people,
            noise=1.5,
            noise_seed=seed,
        ),
        group=group,
    )


def make_friends_clip(rows: int = 120, cols: int = 160) -> tuple[VideoClip, GroundTruth]:
    """Render the conversation segment; 12 shots, 180 frames, 3 fps."""
    three_at_table = (
        _person(rows * 0.66, cols * 0.3, rows * 0.26, 0),
        _person(rows * 0.7, cols * 0.5, rows * 0.24, 1),
        _person(rows * 0.66, cols * 0.7, rows * 0.26, 2),
    )
    closeup_w1 = (_person(rows * 0.45, cols * 0.5, rows * 0.6, 3),)
    closeup_m = (_person(rows * 0.47, cols * 0.52, rows * 0.62, 4),)
    two_men_arrive = (
        _person(rows * 0.6, cols * 0.35, rows * 0.34, 5),
        _person(rows * 0.62, cols * 0.6, rows * 0.34, 6),
    )
    five_at_table = three_at_table + (
        _person(rows * 0.72, cols * 0.15, rows * 0.24, 7),
        _person(rows * 0.72, cols * 0.85, rows * 0.24, 8),
    )
    def v(world: BackgroundSpec, shift: tuple[float, float, float]) -> BackgroundSpec:
        return world.with_color_shift(shift)

    shots = (
        _shot(18, v(_TABLE, (0, 0, 0)), "table", three_at_table, 11),     # wide
        _shot(14, v(_WALL_1, (0, 0, 0)), "closeup-1", closeup_w1, 12),    # woman 1
        _shot(13, v(_WALL_2, (0, 0, 0)), "closeup-2", closeup_m, 13),     # man
        _shot(15, v(_TABLE, (7, -5, 4)), "table", three_at_table, 14),    # back wide
        _shot(14, v(_WALL_1, (6, 5, -4)), "closeup-1", closeup_w1, 15),
        _shot(13, v(_WALL_2, (-6, 5, 5)), "closeup-2", closeup_m, 16),
        _shot(16, v(_ENTRANCE, (0, 0, 0)), "entrance", two_men_arrive, 17),  # arrival
        _shot(12, v(_WALL_1, (5, 6, -4)), "closeup-1", closeup_w1, 18),   # reaction
        _shot(18, v(_TABLE, (-6, 6, -5)), "table", five_at_table, 19),    # joined
        _shot(14, v(_WALL_1, (-5, -6, 5)), "closeup-1", closeup_w1, 20),
        _shot(13, v(_WALL_2, (5, -5, -5)), "closeup-2", closeup_m, 21),
        _shot(20, v(_TABLE, (4, 4, 4)), "table", five_at_table, 22),      # closing
    )
    script = ClipScript(
        name="friends-restaurant", shots=shots, rows=rows, cols=cols, fps=3.0
    )
    return render_clip(script)
