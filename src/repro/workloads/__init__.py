"""Concrete workloads matching the paper's test materials.

* :mod:`repro.workloads.figure5` — the ten-shot example clip
  (A, B, A1, B1, C, A2, C1, D, D1, D2) with the exact frame ranges of
  Table 3;
* :mod:`repro.workloads.friends` — a one-minute restaurant
  conversation mirroring the *Friends* segment of Figure 7;
* :mod:`repro.workloads.movies` — the two-movie retrieval corpus
  standing in for 'Simon Birch' and 'Wag the Dog' (Table 4,
  Figs. 8-10);
* :mod:`repro.workloads.table5` — the 22-clip, six-category detection
  suite of Table 5;
* :mod:`repro.workloads.taxonomy` — the genre/form classification of
  Sec. 4.1 (after the Library of Congress Moving Image Genre-Form
  Guide).
"""

from .figure5 import FIGURE5_GROUPS, FIGURE5_SHOT_RANGES, make_figure5_clip
from .friends import make_friends_clip
from .movies import make_movie_corpus, make_simon_birch, make_wag_the_dog
from .table5 import TABLE5_CLIPS, Table5Clip, generate_table5_clip
from .trailer import make_trailer_clip
from .taxonomy import (
    FORMS,
    GENRES,
    PAPER_CATEGORY_COUNT,
    PAPER_FORM_COUNT,
    PAPER_GENRE_COUNT,
    VideoCategory,
)

__all__ = [
    "FIGURE5_GROUPS",
    "FIGURE5_SHOT_RANGES",
    "make_figure5_clip",
    "make_friends_clip",
    "make_movie_corpus",
    "make_simon_birch",
    "make_wag_the_dog",
    "TABLE5_CLIPS",
    "Table5Clip",
    "generate_table5_clip",
    "make_trailer_clip",
    "FORMS",
    "GENRES",
    "PAPER_CATEGORY_COUNT",
    "PAPER_FORM_COUNT",
    "PAPER_GENRE_COUNT",
    "VideoCategory",
]
