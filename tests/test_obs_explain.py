"""``repro query --explain`` and the HTTP trace surface agree.

Runs the CLI against a durable database built from the paper's three
golden clips and asserts the EXPLAIN output carries the decision
evidence an operator needs (band-probe bounds, candidate/pruned
counts, kernel choice, per-stage timings, index statistics) — then
issues the same query over HTTP with ``X-Trace-Id`` and checks
``/debug/traces`` exposes the matching span structure.
"""

from __future__ import annotations

import json
import re
import threading
import urllib.request

import pytest

from repro import cli
from repro.service.engine import ServiceEngine
from repro.service.server import create_server
from repro.testing.golden import GOLDEN_SPECS, build_clip
from repro.vdbms.database import VideoDatabase

pytestmark = pytest.mark.obs


@pytest.fixture(scope="module")
def golden_db_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("obs-golden") / "db"
    db = VideoDatabase.open(root)
    for spec in GOLDEN_SPECS:
        db.ingest(build_clip(spec))
    return root


def test_explain_prints_the_decision_evidence(golden_db_root, capsys):
    rc = cli.main(
        [
            "query",
            "background calm, foreground calm, limit 5",
            "--db",
            str(golden_db_root),
            "--explain",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    # The span tree with its timings...
    assert re.search(r"trace [0-9a-f]+.*ms total", out)
    assert "db.query" in out and "index.search" in out
    assert re.search(r"\d+\.\d{3} ms", out)
    # ...the band-probe evidence...
    assert "band_low=" in out and "band_high=" in out
    assert "band_rows=" in out
    assert "candidates=" in out and "pruned=" in out
    assert "kernel=single" in out
    # ...and the index statistics block.
    assert "index statistics:" in out
    assert re.search(r"rows\s+\d+", out)
    assert "d_v_range" in out


def test_explain_covers_the_batch_kernel(golden_db_root, tmp_path, capsys):
    batch_file = tmp_path / "batch.json"
    batch_file.write_text(
        json.dumps(
            {
                "queries": [
                    {"var_ba": 1.0, "var_oa": 1.0},
                    {"var_ba": 4.0, "var_oa": 2.0},
                ],
                "limit": 3,
            }
        ),
        encoding="utf-8",
    )
    rc = cli.main(
        [
            "query",
            "--db",
            str(golden_db_root),
            "--batch-file",
            str(batch_file),
            "--explain",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "db.query_batch" in out and "index.search_batch" in out
    assert "n_queries=2" in out
    assert re.search(r"kernel=(flat|per-query)", out)


def test_explain_off_by_default(golden_db_root, capsys):
    rc = cli.main(
        [
            "query",
            "background calm, foreground calm, limit 5",
            "--db",
            str(golden_db_root),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "trace" not in out
    assert "index statistics" not in out


def test_http_trace_matches_the_explain_structure(golden_db_root):
    engine = ServiceEngine(VideoDatabase.open(golden_db_root), n_workers=1,
                           watchdog_interval=0)
    server = create_server(engine)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://{host}:{port}"
    try:
        request = urllib.request.Request(
            f"{base}/query?var_ba=1.0&var_oa=1.0&limit=5",
            headers={"X-Trace-Id": "explain-parity"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            payload = json.loads(response.read().decode("utf-8"))
        assert payload["trace_id"] == "explain-parity"

        with urllib.request.urlopen(f"{base}/debug/traces", timeout=30) as r:
            debug = json.loads(r.read().decode("utf-8"))
        doc = next(
            d for d in debug["traces"] if d["trace_id"] == "explain-parity"
        )
        from repro.obs import iter_spans

        names = {node["name"] for _, node in iter_spans(doc)}
        # The same read-path stages EXPLAIN prints, under a request root.
        assert {"request", "cache.get", "db.query", "index.search"} <= names
        search = next(
            node for _, node in iter_spans(doc) if node["name"] == "index.search"
        )
        ann = search["annotations"]
        assert {"band_low", "band_high", "band_rows", "candidates",
                "pruned", "kernel"} <= set(ann)
        assert ann["band_rows"] == ann["candidates"] + ann["pruned"]
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        engine.shutdown()
