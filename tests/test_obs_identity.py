"""Decision identity: tracing must never change what a query returns.

The tracing layer only *echoes* values the read path already computed
— its annotations are observations, not inputs.  These tests pin that
property across 25 seeded corpora on all three query surfaces (single,
batch, 2-shard cluster): a traced run must be bit-identical to an
untraced run, and the span accounting must be internally consistent
(band rows = kept candidates + pruned).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator
from repro.obs import TraceContext, iter_spans, tracing, unsettled_spans
from repro.testing.synth import synth_database

pytestmark = pytest.mark.obs

SEEDS = list(range(25))
LIMIT = 5


def _points(seed: int, n: int = 4) -> list[tuple[float, float]]:
    """Deterministic query points spanning the synthetic variance range."""
    rng = np.random.default_rng(10_000 + seed)
    return [
        (float(rng.uniform(0.0, 400.0)), float(rng.uniform(0.0, 400.0)))
        for _ in range(n)
    ]


def _fingerprint(answer) -> tuple:
    """Everything a caller can observe about one answer, hashable-ish."""
    return (
        [(e.video_id, e.shot_number, e.d_v, e.sqrt_var_ba) for e in answer.matches],
        [
            (
                r.entry.video_id,
                r.entry.shot_number,
                r.node.label if r.node else None,
            )
            for r in answer.routes
        ],
    )


def _traced(fn):
    """Run ``fn`` under a fresh trace; returns (result, finished doc)."""
    ctx = TraceContext(name="identity")
    with tracing(ctx):
        result = fn()
    return result, ctx.finish()


def _assert_search_accounting(doc: dict) -> int:
    """Every index span's band rows must split into kept + pruned.

    Returns how many index spans were checked (so callers can assert
    the instrumentation actually fired).
    """
    checked = 0
    for _, node in iter_spans(doc):
        if node["name"] not in ("index.search", "index.search_batch"):
            continue
        ann = node.get("annotations", {})
        if "band_rows" not in ann:
            continue
        assert ann["band_rows"] == ann["candidates"] + ann["pruned"], (
            f"span {node['name']} accounting broken: {ann}"
        )
        checked += 1
    return checked


@pytest.mark.parametrize("seed", SEEDS)
def test_single_query_identity(seed):
    db = synth_database(seed, n_videos=3)
    points = _points(seed)
    baseline = [_fingerprint(db.query(ba, oa, limit=LIMIT)) for ba, oa in points]
    traced, doc = _traced(
        lambda: [_fingerprint(db.query(ba, oa, limit=LIMIT)) for ba, oa in points]
    )
    assert traced == baseline
    assert unsettled_spans(doc) == []
    assert _assert_search_accounting(doc) == len(points)


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_query_identity(seed):
    db = synth_database(seed, n_videos=3)
    points = _points(seed)
    baseline = [_fingerprint(a) for a in db.query_batch(points, limit=LIMIT)]
    traced, doc = _traced(
        lambda: [_fingerprint(a) for a in db.query_batch(points, limit=LIMIT)]
    )
    assert traced == baseline
    assert unsettled_spans(doc) == []
    assert _assert_search_accounting(doc) >= 1


@pytest.mark.parametrize("seed", SEEDS)
def test_cluster_query_identity(seed):
    db = synth_database(seed, n_videos=4)
    cluster = ClusterCoordinator.ephemeral(2)
    try:
        for video_id in db.catalog.ids():
            cluster.adopt(db.export_video(video_id))
        ba, oa = _points(seed, n=1)[0]
        baseline = _fingerprint(cluster.query(ba, oa, limit=LIMIT))
        base_batch = [
            _fingerprint(a)
            for a in cluster.query_batch(_points(seed, n=3), limit=LIMIT)
        ]
        traced, doc = _traced(
            lambda: _fingerprint(cluster.query(ba, oa, limit=LIMIT))
        )
        traced_batch, batch_doc = _traced(
            lambda: [
                _fingerprint(a)
                for a in cluster.query_batch(_points(seed, n=3), limit=LIMIT)
            ]
        )
        assert traced == baseline
        assert traced_batch == base_batch
        for d in (doc, batch_doc):
            assert unsettled_spans(d) == []
            assert _assert_search_accounting(d) >= 1
        # The scatter span must account for both shards.
        scatter = next(
            node
            for _, node in iter_spans(doc)
            if node["name"] == "cluster.scatter"
        )
        assert scatter["annotations"]["fan_out"] == 2
        assert scatter["annotations"]["shards_ok"] == 2
        shard_spans = [
            node for _, node in iter_spans(doc) if node["name"] == "shard.query"
        ]
        assert len(shard_spans) == 2
    finally:
        cluster.close()
