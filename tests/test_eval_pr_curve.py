"""Tests for operating curves (repro.eval.pr_curve)."""

import pytest

from repro.eval.pr_curve import (
    OperatingCurve,
    OperatingPoint,
    camera_tracking_curve,
    histogram_curve,
    sweep_detector,
)
from repro.eval.sbd_metrics import SBDScore
from repro.synth.genres import GENRE_MODELS, generate_genre_clip


@pytest.fixture(scope="module")
def workload():
    clips = []
    for genre, seed in (("news", 31), ("music_video", 32)):
        clip, truth = generate_genre_clip(
            GENRE_MODELS[genre], genre, n_shots=10, seed=seed
        )
        clips.append((clip, list(truth.boundaries)))
    return clips


class TestOperatingCurve:
    def _curve(self, f1s):
        points = tuple(
            OperatingPoint(
                parameter=float(k),
                score=SBDScore(actual=100, detected=100, correct=round(f * 100)),
            )
            for k, f in enumerate(f1s)
        )
        return OperatingCurve("x", points)

    def test_best_point(self):
        curve = self._curve([0.5, 0.9, 0.7])
        assert curve.best.parameter == 1.0

    def test_f1_spread(self):
        curve = self._curve([0.5, 0.9, 0.7])
        assert curve.f1_spread == pytest.approx(0.4)

    def test_sweet_spot_width(self):
        curve = self._curve([0.5, 0.9, 0.87, 0.7])
        assert curve.sweet_spot_width(slack=0.05) == 2


class TestSweeps:
    def test_generic_sweep(self, workload):
        def factory(threshold):
            # A fake detector that reports every k-th frame; lower
            # thresholds report more boundaries.
            step = max(1, int(threshold))
            return lambda clip: list(range(step, len(clip), step))

        curve = sweep_detector("fake", workload, [5.0, 20.0], factory)
        assert len(curve.points) == 2
        # More detections -> recall no worse.
        assert curve.points[0].score.recall >= curve.points[1].score.recall

    def test_camera_tracking_curve(self, workload):
        curve = camera_tracking_curve(workload, fractions=(0.1, 0.3, 0.9))
        assert curve.detector_name == "camera-tracking"
        assert len(curve.points) == 3
        # A stricter stage 3 (higher fraction) declares at least as many
        # boundaries, so recall is monotone non-decreasing.
        recalls = [p.score.recall for p in curve.points]
        assert recalls[0] <= recalls[-1] + 1e-9
        # The paper-default region performs well.
        default_point = curve.points[1]
        assert default_point.f1 >= curve.best.f1 - 0.15

    def test_histogram_curve(self, workload):
        curve = histogram_curve(workload, cuts=(0.01, 0.3, 0.8))
        assert len(curve.points) == 3
        # Hair-trigger threshold: most detections, lowest precision.
        assert (
            curve.points[0].score.detected
            >= curve.points[-1].score.detected
        )

    def test_camera_sweet_spot_wider_than_histogram(self, workload):
        """The reliability claim in curve form: around their respective
        best settings, camera tracking tolerates more parameter change
        than the histogram method (checked with matched sweep sizes)."""
        camera = camera_tracking_curve(
            workload, fractions=(0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 0.95)
        )
        histogram = histogram_curve(
            workload, cuts=(0.01, 0.03, 0.08, 0.15, 0.3, 0.5, 0.8)
        )
        assert camera.sweet_spot_width() >= histogram.sweet_spot_width()
