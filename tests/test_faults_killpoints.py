"""Kill-point sweeps: every save and ingest is all-or-nothing.

For each filesystem operation a publish performs, the process model is
killed at exactly that operation (``crash``), the write is torn in
half (``torn``), or a byte is silently flipped (``corrupt``).  After
every injected fault, reloading the database must yield exactly the
pre-operation state or the post-operation state — never anything in
between — and silent corruption must be *detected* (precise
``StorageIntegrityError``, ``repro fsck`` exit 1) rather than served.
"""

import itertools

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.errors import StorageError
from repro.testing import sweep_kill_points, synth_database
from repro.testing.synth import add_synth_video
from repro.vdbms.database import VideoDatabase
from repro.vdbms.storage import DatabaseStorage
from repro.video.clip import VideoClip

pytestmark = pytest.mark.faults

_DIR_COUNTER = itertools.count(1)


def _classifier(pre_ids, post_ids):
    """Build the sweep classifier: reload with the REAL filesystem and
    name the surviving state; anything torn fails the test."""

    def classify(ctx, mode):
        root = ctx["root"]
        storage = DatabaseStorage(root)
        report = storage.fsck()
        try:
            db = VideoDatabase.load(root)
        except StorageError:
            # Detection is only acceptable for silent corruption: a
            # crash or torn write must leave the OLD manifest in force.
            assert mode == "corrupt", f"{mode} fault produced unreadable state"
            assert not report.clean or report.mode == "manifest"
            statuses = {c.status for c in report.problems()}
            assert statuses <= {
                "checksum-mismatch",
                "size-mismatch",
                "missing",
                "corrupt-json",
            }, statuses
            # The CLI agrees something is wrong.
            assert cli_main(["fsck", str(root)]) == 1
            return "detected"
        ids = set(db.catalog.ids())
        if ids == pre_ids:
            assert report.clean
            return "pre"
        if ids == post_ids:
            assert report.clean
            return "post"
        raise AssertionError(f"torn state after {mode}: {sorted(ids)}")

    return classify


def _assert_sound(report):
    assert report.points, "sweep recorded no filesystem operations"
    states = report.states()
    assert states <= {"pre", "post", "detected"}
    # The sweep actually exercised both sides of the commit point.
    assert "pre" in states and "post" in states
    # Corrupt runs at data-file writes must be caught, not served.
    assert any(r.state == "detected" for r in report.by_mode("corrupt"))
    for run in report.by_mode("crash"):
        assert run.state in ("pre", "post")
    for run in report.by_mode("torn"):
        assert run.state in ("pre", "post")


class TestSaveSweep:
    """Whole-database save(): grow state A by one video."""

    def test_save_is_atomic_at_every_kill_point(self, tmp_path, capsys):
        base = synth_database(1, n_videos=2)
        pre_ids = set(base.catalog.ids())

        def setup():
            root = tmp_path / f"save-{next(_DIR_COUNTER)}"
            base_copy = synth_database(1, n_videos=2)
            base_copy.save(root)
            return {"root": root}

        def operation(ctx, fs):
            db = VideoDatabase.load(ctx["root"])
            add_synth_video(db, "extra-video", np.random.default_rng(123))
            db.save(ctx["root"], fs=fs)

        report = sweep_kill_points(
            setup, operation, _classifier(pre_ids, pre_ids | {"extra-video"})
        )
        _assert_sound(report)


class TestDurableIngestSweep:
    """A bound database's ingest(): journal + manifest swap per clip."""

    @staticmethod
    def _clip():
        frames = np.empty((12, 16, 16, 3), dtype=np.uint8)
        for shot, color in enumerate(((230, 60, 40), (40, 200, 60), (50, 80, 220))):
            frames[shot * 4 : (shot + 1) * 4] = np.array(color, dtype=np.uint8)
        return VideoClip("ingested-clip", frames, fps=3.0)

    def test_ingest_is_atomic_at_every_kill_point(self, tmp_path, capsys):
        base = synth_database(2, n_videos=1)
        pre_ids = set(base.catalog.ids())

        def setup():
            root = tmp_path / f"ingest-{next(_DIR_COUNTER)}"
            synth_database(2, n_videos=1).save(root)
            return {"root": root}

        def operation(ctx, fs):
            db = VideoDatabase.open(ctx["root"], fs=fs)
            db.ingest(self._clip())

        report = sweep_kill_points(
            setup, operation, _classifier(pre_ids, pre_ids | {"ingested-clip"})
        )
        _assert_sound(report)

    def test_failed_durable_ingest_rolls_back_memory(self, tmp_path):
        """After a failed publish the in-memory state matches disk, so a
        retry of the same clip succeeds instead of hitting a duplicate."""
        from repro.testing import FaultyFS

        root = tmp_path / "db"
        synth_database(2, n_videos=1).save(root)
        fs = FaultyFS(mode="error", ops=("write",), fail_times=1)
        db = VideoDatabase.open(root, fs=fs)
        with pytest.raises(StorageError):
            db.ingest(self._clip())
        assert "ingested-clip" not in db.catalog
        assert all(e.video_id != "ingested-clip" for e in db.index.entries)
        # The injected fault healed; the retry commits durably.
        report = db.ingest(self._clip())
        assert report.video_id == "ingested-clip"
        reloaded = VideoDatabase.load(root)
        assert "ingested-clip" in reloaded.catalog

    def test_durable_remove_is_atomic(self, tmp_path):
        from repro.testing import FaultyFS, SimulatedCrash

        root = tmp_path / "db"
        base = synth_database(4, n_videos=2)
        base.save(root)
        victim = base.catalog.ids()[0]
        db = VideoDatabase.open(root, fs=FaultyFS(fail_at=2, mode="crash"))
        with pytest.raises(SimulatedCrash):
            db.remove(victim)
        reloaded = VideoDatabase.load(root)
        assert set(reloaded.catalog.ids()) == set(base.catalog.ids())
        db2 = VideoDatabase.open(root)
        db2.remove(victim)
        assert victim not in VideoDatabase.load(root).catalog
