"""Unit tests for repro.service (cache, metrics, lock, engine)."""

import threading
import time

import pytest

from repro.errors import ReproError, WorkloadError
from repro.service.cache import QueryResultCache
from repro.service.engine import (
    JobStatus,
    ReadWriteLock,
    ServiceEngine,
    clip_from_spec,
)
from repro.service.metrics import LatencyHistogram, MetricsRegistry


class TestQueryResultCache:
    def test_miss_then_hit(self):
        cache = QueryResultCache(capacity=4)
        key = cache.make_key(1.0, 2.0, 1.0, 1.0, 5)
        assert cache.get(key) is None
        cache.put(key, {"count": 0})
        assert cache.get(key) == {"count": 0}
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_lru_eviction_order(self):
        cache = QueryResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_invalidate_clears_and_bumps_generation(self):
        cache = QueryResultCache(capacity=4)
        cache.put("a", 1)
        before = cache.generation
        assert cache.invalidate() == 1
        assert cache.get("a") is None
        assert cache.generation == before + 1
        assert cache.stats()["invalidations"] == 1

    def test_stale_generation_fill_rejected(self):
        """A fill computed before an invalidation must not land after it."""
        cache = QueryResultCache(capacity=4)
        generation = cache.generation
        cache.invalidate()  # ingest committed while the query computed
        assert cache.put("a", "stale", generation=generation) is False
        assert cache.get("a") is None
        assert cache.put("a", "fresh", generation=cache.generation) is True
        assert cache.get("a") == "fresh"

    def test_distinct_tolerances_never_alias(self):
        k1 = QueryResultCache.make_key(1.0, 2.0, 1.0, 1.0, None)
        k2 = QueryResultCache.make_key(1.0, 2.0, 2.0, 1.0, None)
        k3 = QueryResultCache.make_key(1.0, 2.0, 1.0, 1.0, 3)
        assert len({k1, k2, k3}) == 3

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            QueryResultCache(capacity=0)


class TestLatencyHistogram:
    def test_counts_and_sum(self):
        histogram = LatencyHistogram()
        for ms in (1.0, 2.0, 100.0):
            histogram.observe(ms / 1_000.0)
        snap = histogram.snapshot()
        assert snap["count"] == 3
        assert snap["mean_ms"] == pytest.approx(34.333, abs=0.01)
        assert snap["min_ms"] == pytest.approx(1.0)
        assert snap["max_ms"] == pytest.approx(100.0)

    def test_percentiles_are_monotonic_upper_bounds(self):
        histogram = LatencyHistogram()
        for k in range(1, 101):
            histogram.observe(k / 1_000.0)  # 1..100 ms
        p50, p90, p99 = (histogram.percentile(p) for p in (50, 90, 99))
        assert p50 <= p90 <= p99
        assert p50 >= 50.0  # upper-bound estimate
        assert p99 <= histogram.max_ms

    def test_empty_histogram(self):
        snap = LatencyHistogram().snapshot()
        assert snap["count"] == 0
        assert snap["p99_ms"] == 0.0

    def test_bucket_overflow_goes_to_inf(self):
        histogram = LatencyHistogram()
        histogram.observe(120.0)  # 2 minutes, beyond the last bound
        assert histogram.snapshot()["buckets"] == {"le_inf": 1}


class TestMetricsRegistry:
    def test_counters(self):
        metrics = MetricsRegistry()
        metrics.increment("ingest_completed")
        metrics.increment("ingest_completed", 2)
        assert metrics.counter("ingest_completed") == 3
        assert metrics.counter("never_bumped") == 0

    def test_requests_aggregate_by_endpoint(self):
        metrics = MetricsRegistry()
        metrics.observe_request("GET /videos", 200, 0.002)
        metrics.observe_request("GET /videos", 404, 0.001)
        metrics.observe_request("POST /query", 200, 0.004)
        snap = metrics.snapshot()
        videos = snap["requests"]["GET /videos"]
        assert videos["count"] == 2
        assert videos["errors"] == 1
        assert videos["latency"]["count"] == 2
        assert snap["requests"]["POST /query"]["errors"] == 0


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        barrier = threading.Barrier(2, timeout=5)

        def reader():
            with lock.read_locked():
                barrier.wait()  # both readers inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        order = []
        lock.acquire_write()

        def reader():
            with lock.read_locked():
                order.append("read")

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.05)
        assert order == []  # reader blocked behind the writer
        order.append("write-done")
        lock.release_write()
        t.join(timeout=5)
        assert order == ["write-done", "read"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        writer_started = threading.Event()
        results = []

        def writer():
            writer_started.set()
            with lock.write_locked():
                results.append("write")

        def late_reader():
            with lock.read_locked():
                results.append("read")

        w = threading.Thread(target=writer)
        w.start()
        writer_started.wait(timeout=5)
        time.sleep(0.05)  # let the writer reach its wait loop
        r = threading.Thread(target=late_reader)
        r.start()
        time.sleep(0.05)
        assert results == []  # reader queued behind the waiting writer
        lock.release_read()
        w.join(timeout=5)
        r.join(timeout=5)
        assert results == ["write", "read"]


class TestClipFromSpec:
    def test_synthetic_is_deterministic(self):
        spec = {"source": "synthetic", "video_id": "s", "n_shots": 2, "seed": 3}
        clip_a, _ = clip_from_spec(spec)
        clip_b, _ = clip_from_spec(spec)
        assert (clip_a.frames == clip_b.frames).all()
        assert clip_a.name == "s"

    def test_synthetic_requires_video_id(self):
        with pytest.raises(WorkloadError):
            clip_from_spec({"source": "synthetic"})

    def test_unknown_source_rejected(self):
        with pytest.raises(WorkloadError):
            clip_from_spec({"source": "webcam"})

    def test_category_parsed(self):
        _, category = clip_from_spec(
            {
                "source": "synthetic",
                "video_id": "s",
                "category": {"genres": ["comedy"], "forms": ["feature"]},
            }
        )
        assert category is not None and "comedy" in category.genres


@pytest.fixture()
def engine():
    engine = ServiceEngine(n_workers=2, cache_capacity=32)
    yield engine
    engine.shutdown()


def _synthetic_spec(video_id, seed=0, n_shots=3):
    return {
        "source": "synthetic",
        "video_id": video_id,
        "n_shots": n_shots,
        "frames_per_shot": 6,
        "seed": seed,
    }


class TestServiceEngine:
    def test_job_lifecycle_done(self, engine):
        job = engine.submit_spec(_synthetic_spec("clip-1"))
        assert job.status in (JobStatus.QUEUED, JobStatus.RUNNING, JobStatus.DONE)
        finished = engine.wait_for(job.job_id, timeout=60)
        assert finished.status is JobStatus.DONE
        assert finished.report["n_shots"] == 3
        assert finished.finished_at >= finished.started_at >= finished.submitted_at
        payload = finished.to_dict()
        assert payload["status"] == "done" and "error" not in payload

    def test_job_failure_is_recorded_not_raised(self, engine):
        job = engine.submit_spec(
            {"source": "file", "path": "/nonexistent/clip.rvid"}
        )
        finished = engine.wait_for(job.job_id, timeout=60)
        assert finished.status is JobStatus.FAILED
        assert "clip.rvid" in finished.error or "Errno" in finished.error

    def test_duplicate_ingest_fails_cleanly(self, engine):
        engine.wait_for(engine.submit_spec(_synthetic_spec("dup")).job_id, 60)
        job = engine.wait_for(engine.submit_spec(_synthetic_spec("dup")).job_id, 60)
        assert job.status is JobStatus.FAILED
        assert "already" in job.error

    def test_malformed_spec_rejected_at_submission(self, engine):
        with pytest.raises(WorkloadError):
            engine.submit_spec({"source": "synthetic"})  # no video_id
        with pytest.raises(WorkloadError):
            engine.submit_spec({"source": "nope"})

    def test_unknown_job_raises(self, engine):
        with pytest.raises(ReproError):
            engine.job("job-999")

    def test_query_caches_and_ingest_invalidates(self, engine):
        engine.wait_for(engine.submit_spec(_synthetic_spec("base", seed=1)).job_id, 60)
        # Wide tolerances: matches every indexed shot.
        first, cached = engine.query(0.0, 0.0, alpha=1e6, beta=1e6)
        assert not cached
        again, cached = engine.query(0.0, 0.0, alpha=1e6, beta=1e6)
        assert cached and again == first
        engine.wait_for(engine.submit_spec(_synthetic_spec("more", seed=2)).job_id, 60)
        after, cached = engine.query(0.0, 0.0, alpha=1e6, beta=1e6)
        assert not cached  # ingest invalidated the cache
        assert after["count"] == first["count"] + 3  # new shots visible
        assert engine.cache.stats()["invalidations"] >= 2

    def test_per_request_tolerances_do_not_alias(self, engine):
        engine.wait_for(engine.submit_spec(_synthetic_spec("tol", seed=3)).job_id, 60)
        wide, _ = engine.query(0.0, 0.0, alpha=1e6, beta=1e6)
        narrow, cached = engine.query(0.0, 0.0, alpha=1e-9, beta=1e-9)
        assert not cached
        assert narrow["count"] <= wide["count"]

    def test_health_and_metrics_payloads(self, engine):
        engine.wait_for(engine.submit_spec(_synthetic_spec("h", seed=4)).job_id, 60)
        health = engine.health_payload()
        assert health["status"] == "ok"
        assert health["videos"] == 1
        assert health["jobs"] == {"done": 1}
        engine.query(1.0, 1.0)
        metrics = engine.metrics_payload()
        assert metrics["counters"]["ingest_completed"] == 1
        assert metrics["query_cache"]["misses"] >= 1
