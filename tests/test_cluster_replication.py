"""Replication: placement, write fan-out, and failover decision identity.

The tentpole contract under test: with R=2, killing any single shard
leaves every ``query`` and ``query_batch`` answer byte-identical to the
healthy cluster's — complete, zero partial — with the outage reported
in ``shards_failed`` *and* ``shards_recovered``.  Plus the machinery
around it: distinct-successor placement, all-or-nothing write fan-out,
the persisted replication factor, replica-aware rebalancing, and the
breaker-style shard supervisor.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cluster import CLUSTER_MANIFEST, ClusterCoordinator
from repro.cluster.rebalance import Rebalancer
from repro.cluster.replication import ShardSupervisor, copy_video
from repro.errors import ClusterError, QueryError, ShardUnavailableError
from repro.service.engine import ServiceEngine
from repro.service.server import create_server
from repro.testing import FakeClock, ShardOutage, break_shard_queries
from repro.testing.synth import add_synth_video
from repro.vdbms.database import VideoDatabase

pytestmark = pytest.mark.replication


def make_record(video_id: str, seed: int):
    """One synthetic video's derived state, detached for adopt()."""
    scratch = VideoDatabase()
    add_synth_video(scratch, video_id, np.random.default_rng(seed))
    return scratch.export_video(video_id)


def make_records(n: int, seed0: int = 0):
    return [make_record(f"clip-{seed0 + k:03d}", seed0 + k) for k in range(n)]


def populate(cluster: ClusterCoordinator, n: int, seed0: int = 0) -> list[str]:
    records = make_records(n, seed0)
    for record in records:
        cluster.adopt(record)
    return [r.video_id for r in records]


def probe_points(records, k: int = 6) -> list[tuple[float, float]]:
    """Deterministic query points drawn from the corpus itself."""
    points = []
    for record in records[:: max(1, len(records) // k)]:
        entry = record.index_entries[0]
        points.append((entry.features.var_ba, entry.features.var_oa))
    return points


def canonical(answer) -> bytes:
    """A byte-exact serialization of everything a client decides on."""
    doc = {
        "matches": [
            [
                m.video_id,
                m.shot_number,
                m.start_frame,
                m.end_frame,
                m.features.var_ba,
                m.features.var_oa,
            ]
            for m in answer.matches
        ],
        "routes": answer.suggestions,
    }
    return json.dumps(doc, sort_keys=True).encode("utf-8")


class TestReplicaPlacement:
    def test_shards_for_walks_distinct_successors(self):
        cluster = ClusterCoordinator.ephemeral(4, replication=2)
        for k in range(20):
            video_id = f"place-{k}"
            copies = cluster.router.shards_for(video_id, 2)
            assert len(copies) == 2
            assert len(set(copies)) == 2
            assert copies[0] == cluster.router.shard_for(video_id)

    def test_fanout_commits_every_copy(self):
        cluster = ClusterCoordinator.ephemeral(3, replication=2)
        ids = populate(cluster, 8)
        for video_id in ids:
            expected = cluster.router.shards_for(video_id, 2)
            assert set(cluster.holders_of(video_id)) == set(expected)
            for shard_id in expected:
                assert video_id in cluster.shards[shard_id].db.catalog
        assert sum(s.replications for s in cluster.shards) == len(ids)

    def test_replication_capped_at_n_shards(self):
        cluster = ClusterCoordinator.ephemeral(2, replication=3)
        assert cluster.effective_replication == 2
        populate(cluster, 2)
        for shard in cluster.shards:
            assert len(shard.db.catalog) == 2

    def test_invalid_replication_rejected(self):
        with pytest.raises(ClusterError):
            ClusterCoordinator.ephemeral(2, replication=0)

    def test_fanout_failure_rolls_back_every_copy(self):
        cluster = ClusterCoordinator.ephemeral(3, replication=2)
        record = make_record("atomic-1", 7)
        primary, replica = cluster.router.shards_for("atomic-1", 2)

        def boom(*args, **kwargs):
            raise OSError("replica disk full")

        cluster.shards[replica].db.adopt = boom
        with pytest.raises(OSError):
            cluster.adopt(record)
        del cluster.shards[replica].db.adopt
        # All-or-nothing: the primary copy was rolled back and the
        # claim released, so the same id adopts cleanly afterwards.
        assert "atomic-1" not in cluster
        for shard in cluster.shards:
            assert "atomic-1" not in shard.db.catalog
        cluster.adopt(record)
        assert set(cluster.holders_of("atomic-1")) == {primary, replica}

    def test_adopt_refuses_when_a_target_is_down(self):
        cluster = ClusterCoordinator.ephemeral(3, replication=2)
        record = make_record("checked-1", 9)
        _, replica = cluster.router.shards_for("checked-1", 2)
        cluster.shards[replica].mark_down("maintenance")
        with pytest.raises(ShardUnavailableError):
            cluster.adopt(record)
        assert "checked-1" not in cluster
        cluster.shards[replica].mark_up()
        cluster.adopt(record)

    def test_remove_drops_every_copy(self):
        cluster = ClusterCoordinator.ephemeral(3, replication=2)
        [video_id] = populate(cluster, 1)
        assert cluster.remove(video_id) > 0
        for shard in cluster.shards:
            assert video_id not in shard.db.catalog
        assert video_id not in cluster


class TestDurableReplication:
    def test_manifest_round_trip(self, tmp_path):
        root = tmp_path / "c"
        cluster = ClusterCoordinator.create(root, 3, replication=2)
        ids = populate(cluster, 6)
        cluster.close()

        payload = json.loads((root / CLUSTER_MANIFEST).read_text())
        assert payload["replication"] == 2

        reopened = ClusterCoordinator.open(root)
        assert reopened.replication == 2
        for video_id in ids:
            assert len(reopened.holders_of(video_id)) == 2
        reopened.close()

    def test_open_or_create_refuses_replication_mismatch(self, tmp_path):
        root = tmp_path / "c"
        ClusterCoordinator.create(root, 2, replication=2).close()
        with pytest.raises(ClusterError, match="repro cluster repair"):
            ClusterCoordinator.open_or_create(root, 2, replication=1)
        # Deferring to the manifest is always fine.
        cluster = ClusterCoordinator.open_or_create(root, 2, replication=None)
        assert cluster.replication == 2
        cluster.close()

    def test_set_replication_rewrites_manifest_only(self, tmp_path):
        root = tmp_path / "c"
        cluster = ClusterCoordinator.create(root, 3, replication=1)
        ids = populate(cluster, 5)
        cluster.set_replication(2)
        payload = json.loads((root / CLUSTER_MANIFEST).read_text())
        assert payload["replication"] == 2
        # No data moved yet: convergence is the rebalancer/repairer's job.
        for video_id in ids:
            assert len(cluster.holders_of(video_id)) == 1
        with pytest.raises(ClusterError):
            cluster.set_replication(0)
        cluster.close()


class TestFailoverDecisionIdentity:
    """The acceptance bar: R=2 answers never change when a shard dies."""

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_replication_does_not_change_answers(self, n_shards):
        records = make_records(12)
        r1 = ClusterCoordinator.ephemeral(n_shards, replication=1)
        r2 = ClusterCoordinator.ephemeral(n_shards, replication=2)
        for record in records:
            r1.adopt(record)
            r2.adopt(record)
        points = probe_points(records)
        for var_ba, var_oa in points:
            assert canonical(r2.query(var_ba, var_oa)) == canonical(
                r1.query(var_ba, var_oa)
            )
        for a1, a2 in zip(r1.query_batch(points), r2.query_batch(points)):
            assert canonical(a2) == canonical(a1)

    @pytest.mark.parametrize("parallel", [False, True])
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_kill_each_shard_in_turn(self, n_shards, parallel):
        records = make_records(12)
        cluster = ClusterCoordinator.ephemeral(n_shards, replication=2)
        cluster.parallel_scatter = parallel
        for record in records:
            cluster.adopt(record)
        points = probe_points(records)
        baseline = [canonical(cluster.query(ba, oa)) for ba, oa in points]
        baseline_batch = [canonical(a) for a in cluster.query_batch(points)]

        for shard_id in range(n_shards):
            name = f"shard-{shard_id}"
            with ShardOutage(cluster, shard_id):
                for point, expect in zip(points, baseline):
                    answer = cluster.query(*point)
                    assert canonical(answer) == expect
                    assert answer.partial is False
                    assert [f["shard"] for f in answer.shards_failed] == [name]
                    assert answer.shards_recovered == [name]
                answers = cluster.query_batch(points)
                assert [canonical(a) for a in answers] == baseline_batch
                for answer in answers:
                    assert answer.partial is False
                    assert [f["shard"] for f in answer.shards_failed] == [name]
            # Healthy again after the outage.
            healthy = cluster.query(*points[0])
            assert healthy.shards_failed == []
            assert canonical(healthy) == baseline[0]

    def test_losing_both_copies_degrades_to_partial(self):
        cluster = ClusterCoordinator.ephemeral(4, replication=2)
        ids = populate(cluster, 12)
        a, b = cluster.holders_of(ids[0])
        with ShardOutage(cluster, a), ShardOutage(cluster, b):
            answer = cluster.query(1.0, 1.0)
            assert answer.partial is True
            assert len(answer.shards_failed) == 2

    def test_failover_counter_ticks(self):
        cluster = ClusterCoordinator.ephemeral(3, replication=2)
        populate(cluster, 6)
        with ShardOutage(cluster, 0):
            cluster.query(1.0, 1.0)
        assert cluster.failovers >= 1


class TestReplicaAwareRebalance:
    def test_raising_replication_plans_copies(self):
        cluster = ClusterCoordinator.ephemeral(3, replication=1)
        ids = populate(cluster, 6)
        cluster.set_replication(2)
        moves = Rebalancer(cluster).plan()
        assert moves and all(m.kind == "copy" for m in moves)
        report = Rebalancer(cluster).execute(moves)
        assert report.moved == len(moves) and not report.errors
        for video_id in ids:
            assert set(cluster.holders_of(video_id)) == set(
                cluster.router.shards_for(video_id, 2)
            )

    def test_lowering_replication_plans_drops(self):
        cluster = ClusterCoordinator.ephemeral(3, replication=2)
        ids = populate(cluster, 6)
        cluster.set_replication(1)
        moves = Rebalancer(cluster).plan()
        assert moves and all(m.kind == "drop" for m in moves)
        Rebalancer(cluster).execute(moves)
        for video_id in ids:
            assert cluster.holders_of(video_id) == (
                cluster.router.shard_for(video_id),
            )

    def test_settled_replicated_cluster_plans_nothing(self):
        cluster = ClusterCoordinator.ephemeral(3, replication=2)
        populate(cluster, 6)
        assert Rebalancer(cluster).plan() == []

    def test_copy_video_primitive_records_the_holder(self):
        cluster = ClusterCoordinator.ephemeral(2, replication=1)
        [video_id] = populate(cluster, 1)
        source_id = cluster.holders_of(video_id)[0]
        dest_id = 1 - source_id
        assert copy_video(
            cluster,
            video_id,
            cluster.shards[source_id],
            cluster.shards[dest_id],
        )
        assert set(cluster.holders_of(video_id)) == {source_id, dest_id}
        assert cluster.shards[dest_id].repairs == 1
        assert not copy_video(
            cluster,
            "never-ingested",
            cluster.shards[source_id],
            cluster.shards[dest_id],
        )


class TestShardSupervisor:
    def _sick_setup(self, threshold=2):
        clock = FakeClock()
        cluster = ClusterCoordinator.ephemeral(3, replication=2)
        populate(cluster, 9)
        supervisor = ShardSupervisor(
            cluster, threshold=threshold, retry_after_s=5.0, clock=clock
        )
        return cluster, supervisor, clock

    def test_benches_after_consecutive_failures(self):
        cluster, supervisor, _ = self._sick_setup(threshold=2)
        with break_shard_queries(cluster.shards[1]):
            answer = cluster.query(1.0, 1.0)
            assert answer.partial is False  # covered by replicas
            assert supervisor.observe(answer) == []
            benched = supervisor.observe(cluster.query(1.0, 1.0))
        assert benched == ["shard-1"]
        assert cluster.shards[1].down
        assert "supervisor" in cluster.shards[1].down_reason
        assert supervisor.trips == 1
        # Benched == routed around: the next scatter still answers fully.
        after = cluster.query(1.0, 1.0)
        assert after.partial is False
        assert [f["reason"] for f in after.shards_failed] == ["down"]

    def test_single_blip_does_not_bench(self):
        cluster, supervisor, _ = self._sick_setup(threshold=2)
        with break_shard_queries(cluster.shards[1]):
            supervisor.observe(cluster.query(1.0, 1.0))
        supervisor.observe(cluster.query(1.0, 1.0))  # healthy: resets
        with break_shard_queries(cluster.shards[1]):
            supervisor.observe(cluster.query(1.0, 1.0))
        assert not cluster.shards[1].down

    def test_probe_readmits_after_cooldown(self):
        cluster, supervisor, clock = self._sick_setup(threshold=1)
        with break_shard_queries(cluster.shards[2]):
            supervisor.observe(cluster.query(1.0, 1.0))
        assert cluster.shards[2].down
        clock.advance(4.9)
        assert supervisor.probe() == []  # cool-down not elapsed
        clock.advance(0.2)
        assert supervisor.probe() == ["shard-2"]
        assert not cluster.shards[2].down
        assert supervisor.readmissions == 1
        assert cluster.query(1.0, 1.0).shards_failed == []

    def test_readmit_respects_manual_mark_down(self):
        cluster, supervisor, _ = self._sick_setup()
        cluster.shards[0].mark_down("operator maintenance")
        assert supervisor.readmit("shard-0") is False
        assert cluster.shards[0].down  # not the supervisor's to reverse


def _get(base_url: str, path: str):
    try:
        with urllib.request.urlopen(base_url + path, timeout=30) as response:
            return response.status, json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


def _post(base_url: str, path: str):
    request = urllib.request.Request(
        base_url + path, data=b"", method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


class TestServiceFailover:
    def test_engine_reports_recovery_and_skips_the_cache(self):
        cluster = ClusterCoordinator.ephemeral(3, replication=2)
        populate(cluster, 9)
        engine = ServiceEngine(cluster, n_workers=3, watchdog_interval=0)
        try:
            cluster.shards[0].mark_down("chaos")
            payload, cached = engine.query(1.0, 1.0)
            assert payload["partial"] is False
            assert payload["shards_recovered"] == ["shard-0"]
            assert not cached
            # Failover answers are never cached: the same point misses
            # again (and the failover counter ticks once per answer).
            _, cached = engine.query(1.0, 1.0)
            assert not cached
            counters = engine.metrics_payload()["counters"]
            assert counters["cluster_failover_answers"] == 2
            assert counters.get("cluster_partial_answers", 0) == 0
        finally:
            engine.shutdown(timeout=10)

    def test_admin_kill_and_revive_over_http(self):
        cluster = ClusterCoordinator.ephemeral(3, replication=2)
        populate(cluster, 9)
        engine = ServiceEngine(cluster, n_workers=3, watchdog_interval=0)
        server = create_server(engine)
        host, port = server.server_address[:2]
        base_url = f"http://{host}:{port}"
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, body = _post(base_url, "/admin/shards/1/kill")
            assert status == 200 and body["up"] is False

            status, health = _get(base_url, "/health")
            assert status == 200
            assert health["cluster"]["shards_up"] == 2
            assert health["cluster"]["replication"] == 2
            down = [s for s in health["cluster"]["shards"] if not s["up"]]
            assert [s["shard"] for s in down] == ["shard-1"]
            assert "supervisor" in health["cluster"]
            assert health["cluster"]["scrubber_running"] is False

            # R=2 keeps queries complete through the outage.
            status, answer = _get(base_url, "/query?var_ba=1.0&var_oa=1.0")
            assert status == 200 and answer["partial"] is False
            assert answer["shards_recovered"] == ["shard-1"]

            status, body = _post(base_url, "/admin/shards/1/revive")
            assert status == 200 and body["up"] is True

            status, _ = _post(base_url, "/admin/shards/99/kill")
            assert status == 400
            status, _ = _post(base_url, "/admin/shards/not-a-number/kill")
            assert status == 400
        finally:
            server.shutdown()
            thread.join(timeout=10)
            engine.shutdown(timeout=10)

    def test_admin_requires_cluster_mode(self):
        engine = ServiceEngine(
            VideoDatabase(), n_workers=1, watchdog_interval=0
        )
        try:
            with pytest.raises(QueryError):
                engine.kill_shard(0)
        finally:
            engine.shutdown(timeout=10)
