"""Tests for algorithm RELATIONSHIP (Sec. 3.1, Eq. 2)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.config import SceneTreeConfig
from repro.errors import SceneTreeError
from repro.scenetree.relationship import related_shots, relationship


def _stream(values):
    """Build an (n, 3) sign stream from per-frame gray levels."""
    return np.array([[v, v, v] for v in values], dtype=np.uint8)


class TestRelationship:
    def test_identical_streams_related(self):
        signs = _stream([100, 100, 100])
        result = relationship(signs, signs)
        assert result.related
        assert result.frame_a == 0 and result.frame_b == 0
        assert result.pairs_examined == 1

    def test_within_ten_percent_related(self):
        a = _stream([100] * 5)
        b = _stream([125] * 5)  # diff 25 < 25.6
        assert related_shots(a, b)

    def test_beyond_ten_percent_unrelated(self):
        a = _stream([100] * 5)
        b = _stream([126] * 5)  # diff 26 > 25.6
        assert not related_shots(a, b)

    def test_eq2_uses_max_channel(self):
        a = np.array([[100, 100, 100]], dtype=np.uint8)
        b = np.array([[100, 100, 180]], dtype=np.uint8)  # only blue far
        assert not related_shots(a, b)

    def test_diagonal_scan_order(self):
        """The paper's loop pairs frame i of A with frame i mod |B| of B."""
        a = _stream([0, 0, 0, 0, 50])
        b = _stream([200, 50])
        # Pairs: (0,200) (0,50) (0,200) (0,50) (50,200) -> no hit within
        # tolerance until pair 2: (0,50)? diff 50 -> no. Actually no
        # diagonal pair matches; exhaustive would find (4, 1).
        result = relationship(a, b)
        assert not result.related
        exhaustive = relationship(a, b, exhaustive=True)
        assert exhaustive.related
        assert (exhaustive.frame_a, exhaustive.frame_b) == (4, 1)

    def test_diagonal_hit_reports_pair(self):
        a = _stream([0, 0, 60])
        b = _stream([200, 200, 65])
        result = relationship(a, b)
        assert result.related
        assert (result.frame_a, result.frame_b) == (2, 2)
        assert result.pairs_examined == 3

    def test_min_difference_reported_on_miss(self):
        a = _stream([0])
        b = _stream([128])
        result = relationship(a, b)
        assert not result.related
        assert result.min_difference_percent == pytest.approx(50.0)

    def test_exhaustive_examines_all_pairs(self):
        a = _stream([0, 10, 20])
        b = _stream([200, 210])
        result = relationship(a, b, exhaustive=True)
        assert result.pairs_examined == 6

    def test_max_frames_compared_cap(self):
        config = SceneTreeConfig(max_frames_compared=2)
        a = _stream([0, 0, 0, 0, 50])
        b = _stream([60] * 5)
        result = relationship(a, b, config=config)
        assert result.pairs_examined <= 2
        assert not result.related  # the hit at i=4 is beyond the cap

    def test_custom_tolerance(self):
        config = SceneTreeConfig(relationship_tolerance=0.25)
        a = _stream([100])
        b = _stream([160])  # 60/256 = 23.4% < 25%
        assert related_shots(a, b, config=config)

    def test_rejects_empty_stream(self):
        with pytest.raises(SceneTreeError):
            relationship(np.zeros((0, 3)), _stream([1]))

    def test_rejects_bad_shape(self):
        with pytest.raises(SceneTreeError):
            relationship(np.zeros((4, 2)), _stream([1]))

    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=30),
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=30),
    )
    def test_property_symmetric_when_equal_lengths(self, xs, ys):
        """For equal-length streams the diagonal scan is symmetric."""
        n = min(len(xs), len(ys))
        a, b = _stream(xs[:n]), _stream(ys[:n])
        assert related_shots(a, b) == related_shots(b, a)

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=30))
    def test_property_reflexive(self, xs):
        signs = _stream(xs)
        assert related_shots(signs, signs)

    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=15),
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=15),
    )
    def test_property_diagonal_hit_implies_exhaustive_hit(self, xs, ys):
        a, b = _stream(xs), _stream(ys)
        if related_shots(a, b):
            assert related_shots(a, b, exhaustive=True)
