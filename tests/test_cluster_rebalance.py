"""Online rebalancing: planning, moves, resharding, crash conflicts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    ClusterCoordinator,
    ConsistentHashRouter,
    RebalanceMove,
    Rebalancer,
)
from repro.errors import ClusterError
from repro.testing.synth import add_synth_video
from repro.vdbms.database import VideoDatabase

pytestmark = pytest.mark.rebalance


def make_record(video_id: str, seed: int):
    scratch = VideoDatabase()
    add_synth_video(scratch, video_id, np.random.default_rng(seed))
    return scratch.export_video(video_id)


def populate(cluster, n, seed0=0):
    ids = [f"rv-{seed0 + k:03d}" for k in range(n)]
    for k, video_id in enumerate(ids):
        cluster.adopt(make_record(video_id, seed0 + k))
    return ids


class TestPlanning:
    def test_settled_cluster_plans_nothing(self):
        cluster = ClusterCoordinator.ephemeral(3)
        populate(cluster, 9)
        assert Rebalancer(cluster).plan() == []

    def test_plan_against_new_ring_lists_the_diff(self):
        cluster = ClusterCoordinator.ephemeral(2)
        ids = populate(cluster, 12)
        target = ConsistentHashRouter(4)
        moves = Rebalancer(cluster).plan(target)
        expected = {
            v for v in ids if target.shard_for(v) != cluster.router.shard_for(v)
        }
        assert {m.video_id for m in moves} == expected
        for move in moves:
            assert move.dest == target.shard_for(move.video_id)


class TestExecution:
    def test_moves_relocate_durably(self, tmp_path):
        cluster = ClusterCoordinator.create(tmp_path / "c", 2)
        ids = populate(cluster, 8)
        victim = ids[0]
        source = cluster.locate(victim).shard_id
        dest = 1 - source
        report = Rebalancer(cluster).execute(
            [RebalanceMove(victim, source=source, dest=dest)]
        )
        assert report.moved == 1 and not report.errors
        assert cluster.locate(victim).shard_id == dest
        cluster.close()
        # The move survived through the checksummed publish path.
        reopened = ClusterCoordinator.open(tmp_path / "c")
        assert reopened.locate(victim).shard_id == dest
        assert reopened.conflicts == []
        reopened.close()

    def test_max_moves_bounds_a_run(self):
        # A 4-shard cluster planning against a 2-shard ring: every
        # destination exists, so the plan is directly executable.
        cluster = ClusterCoordinator.ephemeral(4)
        populate(cluster, 12)
        rebalancer = Rebalancer(cluster)
        moves = rebalancer.plan(ConsistentHashRouter(2))
        assert len(moves) >= 2
        report = rebalancer.execute(moves, max_moves=1)
        assert report.moved == 1
        assert report.planned == len(moves)

    def test_stale_move_is_skipped_not_fatal(self):
        cluster = ClusterCoordinator.ephemeral(2)
        ids = populate(cluster, 4)
        victim = ids[0]
        wrong_source = 1 - cluster.locate(victim).shard_id
        report = Rebalancer(cluster).execute(
            [RebalanceMove(victim, source=wrong_source, dest=0)]
        )
        assert report.moved == 0 and report.skipped == 1
        assert "stale plan" in report.errors[0]["error"]


class TestResharding:
    def test_grow_moves_minimal_set_and_settles(self, tmp_path):
        cluster = ClusterCoordinator.create(tmp_path / "c", 2)
        ids = populate(cluster, 16)
        old_router = cluster.router
        new_router = ConsistentHashRouter(4, replicas=old_router.replicas)
        expected_moves = sum(
            1 for v in ids if old_router.shard_for(v) != new_router.shard_for(v)
        )
        report = Rebalancer(cluster).reshard(4)
        assert cluster.n_shards == 4
        assert report.moved == expected_moves
        assert Rebalancer(cluster).plan() == []
        cluster.close()
        reopened = ClusterCoordinator.open(tmp_path / "c")
        assert reopened.n_shards == 4
        assert reopened.catalog_size() == 16
        reopened.close()

    def test_shrink_drains_dropped_shards(self, tmp_path):
        cluster = ClusterCoordinator.create(tmp_path / "c", 4)
        populate(cluster, 12)
        report = Rebalancer(cluster).reshard(2)
        assert cluster.n_shards == 2
        assert not report.errors
        assert cluster.catalog_size() == 12
        cluster.close()
        reopened = ClusterCoordinator.open(tmp_path / "c")
        assert reopened.n_shards == 2
        assert reopened.catalog_size() == 12
        reopened.close()

    def test_shrink_refuses_a_partial_budget(self):
        cluster = ClusterCoordinator.ephemeral(4)
        populate(cluster, 12)
        rebalancer = Rebalancer(cluster)
        needed = len(rebalancer.plan(ConsistentHashRouter(2)))
        if needed < 2:  # pragma: no cover - corpus-dependent guard
            pytest.skip("corpus needs no moves to shrink")
        with pytest.raises(ClusterError, match="strand"):
            rebalancer.reshard(2, max_moves=1)
        # Refusal left the layout unchanged.
        assert cluster.n_shards == 4

    def test_reshard_to_same_count_is_a_noop(self):
        cluster = ClusterCoordinator.ephemeral(3)
        populate(cluster, 6)
        report = Rebalancer(cluster).reshard(3)
        assert report.moved == 0 and report.planned == 0

    def test_grow_crash_after_manifest_recovers(self, tmp_path):
        """Crash between the manifest rewrite and the moves: reopening
        with the new ring finds every video and plans the remainder."""
        cluster = ClusterCoordinator.create(tmp_path / "c", 2)
        ids = populate(cluster, 10)
        new_router = ConsistentHashRouter(4, replicas=cluster.router.replicas)
        # Simulate the crash point: manifest published, zero moves run.
        ClusterCoordinator._write_manifest(tmp_path / "c", new_router)
        cluster.close()
        reopened = ClusterCoordinator.open(tmp_path / "c")
        assert reopened.n_shards == 4
        assert reopened.catalog_size() == 10
        pending = Rebalancer(reopened).plan()
        assert {m.video_id for m in pending} <= set(ids)
        report = Rebalancer(reopened).execute()
        assert not report.errors
        assert Rebalancer(reopened).plan() == []
        reopened.close()


class TestCrashConflicts:
    def _cluster_with_stray(self, tmp_path):
        """A durable cluster crashed mid-move: one video on two shards."""
        cluster = ClusterCoordinator.create(tmp_path / "c", 2)
        ids = populate(cluster, 6)
        victim = ids[0]
        source = cluster.locate(victim)
        dest = cluster.shards[1 - source.shard_id]
        dest.db.adopt(source.db.export_video(victim))  # copy, no delete
        cluster.close()
        return victim, ClusterCoordinator.open(tmp_path / "c")

    def test_open_detects_the_conflict(self, tmp_path):
        victim, reopened = self._cluster_with_stray(tmp_path)
        assert [v for v, _ in reopened.conflicts] == [victim]
        # The winner is the ring home, so reads stay deterministic.
        assert reopened.locate(victim).shard_id == (
            reopened.router.shard_for(victim)
        )
        # Queries stay duplicate-free even before cleanup.
        probe = reopened.locate(victim).db.index.entries[0]
        answer = reopened.query(probe.features.var_ba, probe.features.var_oa)
        keys = [(m.video_id, m.shot_number) for m in answer.matches]
        assert len(keys) == len(set(keys))
        reopened.close()

    def test_rebalance_cleans_the_stray_copy(self, tmp_path):
        victim, reopened = self._cluster_with_stray(tmp_path)
        report = Rebalancer(reopened).execute()
        assert report.conflicts_cleaned == 1
        assert reopened.conflicts == []
        holders = [
            shard.shard_id
            for shard in reopened.shards
            if victim in shard.db.catalog
        ]
        assert holders == [reopened.locate(victim).shard_id]
        reopened.close()
        # Cleanliness is durable.
        final = ClusterCoordinator.open(tmp_path / "c")
        assert final.conflicts == []
        final.close()
