"""Units for the resilience primitives: deadlines, the circuit
breaker, lock timeouts, metrics gauges, and dedicated timeout errors."""

import threading

import pytest

from repro.errors import (
    CircuitOpenError,
    ReproError,
    ServiceOverloadError,
    ServiceTimeout,
    ServiceUnavailableError,
)
from repro.service.cache import QueryResultCache
from repro.service.engine import ReadWriteLock, ServiceEngine
from repro.service.metrics import MetricsRegistry
from repro.service.resilience import CircuitBreaker, Deadline
from repro.testing.chaos import FakeClock


class TestDeadline:
    def test_remaining_counts_down_on_the_injected_clock(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(250, clock=clock)
        assert deadline.remaining() == pytest.approx(0.25)
        assert not deadline.expired
        clock.advance(0.2)
        assert deadline.remaining() == pytest.approx(0.05)
        clock.advance(0.1)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_check_raises_service_timeout_after_expiry(self):
        clock = FakeClock()
        deadline = Deadline(0.1, clock=clock)
        deadline.check("query")  # not expired: no raise
        clock.advance(0.2)
        with pytest.raises(ServiceTimeout, match="query"):
            deadline.check("query")

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline.after_ms(-5)


class TestTimeoutErrorTaxonomy:
    def test_service_errors_are_repro_errors(self):
        assert issubclass(ServiceTimeout, ReproError)
        assert issubclass(ServiceOverloadError, ReproError)
        assert issubclass(ServiceUnavailableError, ReproError)
        assert issubclass(CircuitOpenError, ServiceUnavailableError)

    def test_overload_errors_carry_retry_after(self):
        assert ServiceOverloadError("full", retry_after=2.5).retry_after == 2.5
        assert CircuitOpenError("open", retry_after=4.0).retry_after == 4.0

    def test_wait_for_and_drain_raise_service_timeout(self):
        engine = ServiceEngine(
            n_workers=1,
            watchdog_interval=0,
            ingest_hook=lambda clip: threading.Event().wait(0.3),
        )
        try:
            job = engine.submit_spec(
                {"source": "synthetic", "video_id": "slow", "rows": 16, "cols": 16}
            )
            with pytest.raises(ServiceTimeout):
                engine.wait_for(job.job_id, timeout=0.01)
            with pytest.raises(ServiceTimeout):
                engine.drain(timeout=0.01)
            engine.drain(timeout=30)
        finally:
            engine.shutdown()


class TestCircuitBreaker:
    def test_trips_open_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=5.0, clock=clock)
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # not yet at threshold
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.admits()
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(5.0)

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=2.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(2.0)
        assert breaker.state == "half_open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # concurrent caller refused
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens_and_restarts_the_timer(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=2.0, clock=clock)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.retry_after() == pytest.approx(2.0)
        assert breaker.snapshot()["times_opened"] == 2

    def test_release_probe_lets_the_next_caller_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        # The probe call died without a storage verdict (permanent app
        # error): without release_probe the breaker would wedge here.
        breaker.release_probe()
        assert breaker.allow()

    def test_snapshot_counters(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        breaker.allow()
        breaker.record_success()
        snap = breaker.snapshot()
        assert snap["state"] == "closed"
        assert snap["times_opened"] == 1
        assert snap["total_failures"] == 1
        assert snap["total_successes"] == 1
        assert snap["consecutive_failures"] == 0


class TestLockTimeouts:
    def test_read_times_out_behind_a_writer(self):
        lock = ReadWriteLock()
        assert lock.acquire_write()
        try:
            assert not lock.acquire_read(timeout=0.02)
            with pytest.raises(ServiceTimeout):
                with lock.read_locked(timeout=0.02):
                    pass  # pragma: no cover - not reached
        finally:
            lock.release_write()
        with lock.read_locked(timeout=0.1):
            pass

    def test_write_times_out_behind_a_reader(self):
        lock = ReadWriteLock()
        assert lock.acquire_read()
        try:
            assert not lock.acquire_write(timeout=0.02)
            with pytest.raises(ServiceTimeout):
                with lock.write_locked(timeout=0.02):
                    pass  # pragma: no cover - not reached
        finally:
            lock.release_read()
        with lock.write_locked(timeout=0.1):
            pass

    def test_gave_up_writer_wakes_queued_readers(self):
        """A writer that times out must not leave readers stranded."""
        lock = ReadWriteLock()
        assert lock.acquire_read()  # blocks the writer below
        reader_done = threading.Event()

        def late_reader():
            # Queued behind the waiting writer (writer preference);
            # once that writer gives up, this reader must get through.
            with lock.read_locked(timeout=5.0):
                reader_done.set()

        writer = threading.Thread(
            target=lambda: lock.acquire_write(timeout=0.1), daemon=True
        )
        writer.start()
        # Give the writer a moment to start waiting so the reader
        # really queues behind it.
        writer.join(timeout=0.02)
        reader = threading.Thread(target=late_reader, daemon=True)
        reader.start()
        writer.join(timeout=5.0)
        assert reader_done.wait(5.0), "reader stranded after writer gave up"
        lock.release_read()


class TestGaugesAndCacheCounters:
    def test_gauges_snapshot_and_high_water(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 3)
        registry.set_gauge_max("depth_peak", 3)
        registry.set_gauge("depth", 1)
        registry.set_gauge_max("depth_peak", 1)  # must not lower the peak
        assert registry.gauge("depth") == 1
        assert registry.gauge("depth_peak") == 3
        snap = registry.snapshot()
        assert snap["gauges"] == {"depth": 1, "depth_peak": 3}
        assert registry.gauge("never_set") == 0.0

    def test_stale_fill_counter(self):
        cache = QueryResultCache(capacity=4)
        generation = cache.generation
        cache.invalidate()
        assert not cache.put("key", {"x": 1}, generation=generation)
        assert cache.stats()["stale_fills"] == 1
        assert cache.put("key", {"x": 1}, generation=cache.generation)
