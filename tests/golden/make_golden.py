"""Regenerate the golden-corpus fixtures in this directory.

Run after an *intentional* change to the extraction/detection outputs::

    PYTHONPATH=src python tests/golden/make_golden.py

(equivalent to ``python -m repro.testing.golden tests/golden``).
"""

import sys
from pathlib import Path

if __name__ == "__main__":
    from repro.testing.golden import main

    sys.exit(main([str(Path(__file__).parent)]))
