"""Tests for the experiment drivers (tables/figures reproduction)."""

from repro.experiments import report, table1, table2, table3, figure6, figure7
from repro.experiments.table5 import run as run_table5
from repro.workloads.table5 import TABLE5_CLIPS


class TestReportFormatting:
    def test_format_table_aligns(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": None}]
        text = report.format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "-" in lines[2]
        assert len(lines) == 5

    def test_format_value(self):
        assert report.format_value(None) == "-"
        assert report.format_value(0.125) == "0.12"
        assert report.format_value(7) == "7"

    def test_empty_rows(self):
        assert "(no rows)" in report.format_table([])


class TestTable1:
    def test_matches_paper(self):
        result = table1.run()
        assert result.matches_paper
        assert result.rows[0] == {"estimate_range": "1..2", "nearest_value": 1}
        assert result.rows[-1] == {"estimate_range": "45..92", "nearest_value": 61}


class TestTable2:
    def test_matches_paper(self):
        result = table2.run()
        assert result.matches_paper
        assert result.selected_frame_number == 1
        assert result.longest_run == 6
        assert result.top_two_frames == (1, 15)


class TestTable3:
    def test_shot_ranges_exact(self):
        result = table3.run()
        assert result.shot_ranges_match_paper
        assert len(result.rows) == 10
        assert result.rows[0]["start_frame"] == 1
        assert result.rows[-1]["end_frame"] == 625


class TestFigure6:
    def test_full_reproduction(self):
        result = figure6.run()
        assert result.trace_matches
        assert result.shape_matches
        assert result.matches_paper


class TestFigure7:
    def test_friends_tree(self):
        result = figure7.run()
        assert result.boundaries_exact
        assert result.tree.n_shots == 12
        assert result.tree.height >= 2
        assert len(result.storyboard) == len(result.tree.nodes())
        assert result.quality.pair_agreement > 0.5


class TestTable5:
    def test_subset_runs_and_scores(self):
        """Two small clips keep this test fast; the full suite is the
        bench's job."""
        result = run_table5(scale=0.1, clips=TABLE5_CLIPS[5:7])
        assert len(result.outcomes) == 2
        for outcome in result.outcomes:
            assert 0.0 <= outcome.score.recall <= 1.0
            assert 0.0 <= outcome.score.precision <= 1.0
        rows = result.rows()
        assert rows[-1]["name"] == "Total"
        assert result.total.actual == sum(o.score.actual for o in result.outcomes)

    def test_baselines_optional(self):
        result = run_table5(
            scale=0.1, clips=TABLE5_CLIPS[6:7], include_baselines=True
        )
        outcome = result.outcomes[0]
        assert set(outcome.baseline_scores) == {"histogram", "ecr", "pairwise"}
        row = outcome.to_row()
        assert "histogram_recall" in row


class TestRetrievalMatrix:
    def test_small_corpus_matrix(self):
        from repro.experiments.retrieval_matrix import ARCHETYPE_ORDER, run

        result = run(scale=0.4)
        # Matrix covers the three labeled archetypes.
        assert set(result.matrix) == set(ARCHETYPE_ORDER[:3])
        assert result.n_queries > 10
        # The headline claim at corpus scale: strongly diagonal.
        assert result.diagonal_fraction >= 0.8
        for precision in result.per_archetype_precision().values():
            assert precision >= 0.6
