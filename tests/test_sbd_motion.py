"""Tests for camera-motion classification (repro.sbd.motion)."""

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.sbd import CameraTrackingDetector
from repro.sbd.motion import (
    CameraMotion,
    best_alignment_shift,
    classify_shot_motion,
    segment_shift_profile,
)
from repro.synth.camera import CameraSpec
from repro.synth.shotgen import ShotSpec, render_shot
from repro.synth.textures import BackgroundSpec
from repro.video.clip import VideoClip


def _detect(camera: CameraSpec, detail_seed: int = 5, n_frames: int = 16):
    background = BackgroundSpec(
        kind="blotches", base_color=(140.0, 100.0, 90.0), detail_seed=detail_seed
    )
    spec = ShotSpec(
        n_frames=n_frames,
        background=background,
        camera=camera,
        noise=1.0,
        noise_seed=9,
        margin=96,
    )
    frames = render_shot(spec, 120, 160)
    return CameraTrackingDetector().detect(VideoClip("m", frames))


class TestBestAlignmentShift:
    def test_zero_for_identical(self):
        sig = np.tile(np.arange(61)[:, None] * 4.0, (1, 3))
        assert best_alignment_shift(sig, sig) == 0

    def test_recovers_known_shift(self):
        """Convention: a positive estimate means b's content comes from
        further right in a (``a[i + s] == b[i]``)."""
        rng = np.random.default_rng(1)
        base = rng.uniform(0, 255, size=(80, 3))
        a = base[10 : 10 + 61]
        for displacement in (-7, -3, 4, 9):
            b = base[10 + displacement : 10 + displacement + 61]
            measured = best_alignment_shift(a, b, 0.02)
            assert measured == displacement

    def test_prefers_smaller_shift_on_tie(self):
        flat = np.full((61, 3), 100.0)
        assert best_alignment_shift(flat, flat, 0.10) == 0

    def test_rejects_shape_mismatch(self):
        with pytest.raises(DimensionError):
            best_alignment_shift(np.zeros((10, 3)), np.zeros((12, 3)))


class TestSegmentProfile:
    def test_shape(self):
        result = _detect(CameraSpec(kind="static"))
        signatures = result.features.signatures_ba
        profile = segment_shift_profile(signatures, result.features.geometry)
        assert profile.shape == (len(signatures) - 4, 4)

    def test_single_frame_empty(self):
        result = _detect(CameraSpec(kind="static"), n_frames=1)
        profile = segment_shift_profile(
            result.features.signatures_ba, result.features.geometry
        )
        assert profile.shape == (0, 4)

    def test_static_profile_near_zero(self):
        result = _detect(CameraSpec(kind="static", jitter=0.2, jitter_seed=3))
        profile = segment_shift_profile(
            result.features.signatures_ba, result.features.geometry
        )
        assert np.abs(profile).mean() < 0.5


class TestClassification:
    def test_static_always_recognized(self):
        for seed in (5, 9, 13, 21):
            result = _detect(CameraSpec(kind="static", jitter=0.3, jitter_seed=1), seed)
            estimate = classify_shot_motion(result, result.shots[0])
            assert estimate.motion is CameraMotion.STATIC, seed

    def test_pan_direction_sign(self):
        result = _detect(CameraSpec(kind="pan", speed=2.5, direction=1, jitter=0.2))
        estimate = classify_shot_motion(result, result.shots[0])
        assert estimate.mean_global_shift > 0.5
        result = _detect(CameraSpec(kind="pan", speed=2.5, direction=-1, jitter=0.2))
        estimate = classify_shot_motion(result, result.shots[0])
        assert estimate.mean_global_shift < -0.5

    def test_tilt_produces_column_signal(self):
        result = _detect(CameraSpec(kind="tilt", speed=2.5, direction=1, jitter=0.2))
        estimate = classify_shot_motion(result, result.shots[0])
        assert abs(estimate.mean_column_shift) > 0.8

    def test_single_frame_shot_is_static(self):
        result = _detect(CameraSpec(kind="static"), n_frames=1)
        estimate = classify_shot_motion(result, result.shots[0])
        assert estimate.motion is CameraMotion.STATIC
        assert estimate.n_pairs == 0

    def test_battery_accuracy(self):
        """Aggregate accuracy over a textured battery; the classifier is
        a documented heuristic (aperture problem), so we require >= 75 %
        overall rather than perfection."""
        battery = []
        for seed in (5, 9, 13):
            battery.extend(
                [
                    (CameraSpec(kind="static", jitter=0.3, jitter_seed=1), {"static"}, seed),
                    (CameraSpec(kind="pan", speed=2.5, direction=1, jitter=0.2, jitter_seed=2), {"pan"}, seed),
                    (CameraSpec(kind="pan", speed=2.5, direction=-1, jitter=0.2, jitter_seed=3), {"pan"}, seed),
                    (CameraSpec(kind="tilt", speed=2.5, direction=1, jitter=0.2, jitter_seed=4), {"tilt"}, seed),
                    (CameraSpec(kind="tilt", speed=2.5, direction=-1, jitter=0.2, jitter_seed=6), {"tilt"}, seed),
                    (CameraSpec(kind="zoom", speed=0.03, direction=1, jitter=0.2, jitter_seed=5), {"zoom", "other"}, seed),
                    (CameraSpec(kind="zoom", speed=0.03, direction=-1, jitter=0.2, jitter_seed=7), {"zoom", "other"}, seed),
                ]
            )
        correct = 0
        for camera, expected, seed in battery:
            result = _detect(camera, seed)
            estimate = classify_shot_motion(result, result.shots[0])
            correct += estimate.motion.value in expected
        assert correct / len(battery) >= 0.75

    def test_works_on_genre_clip_shots(self):
        """Classification runs over every shot of a realistic clip."""
        from repro.synth.genres import GENRE_MODELS, generate_genre_clip

        clip, _ = generate_genre_clip(
            GENRE_MODELS["sports"], "s", n_shots=8, seed=3
        )
        result = CameraTrackingDetector().detect(clip)
        estimates = [
            classify_shot_motion(result, shot) for shot in result.shots
        ]
        assert len(estimates) == result.n_shots
        kinds = {e.motion for e in estimates}
        assert kinds <= set(CameraMotion)
