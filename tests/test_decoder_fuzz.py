"""Fuzz-style hardening tests for the video decoders.

Contract: feeding arbitrary bytes to ``read_rvid``, ``read_avi``, or
``read_ppm`` either succeeds or raises :class:`VideoFormatError` — never
``struct.error``, ``IndexError``, ``MemoryError``, ``ValueError``, or
``UnicodeDecodeError`` — and a header declaring absurd dimensions is
rejected *before* any allocation sized by it."""

import struct

import numpy as np
import pytest

from repro.errors import VideoFormatError
from repro.video.avi import read_avi, write_avi
from repro.video.clip import VideoClip
from repro.video.io import read_rvid, stream_rvid, write_rvid
from repro.video.ppm import read_ppm, write_ppm

# Everything a decoder is forbidden from leaking to callers.
FORBIDDEN = (
    struct.error,
    IndexError,
    KeyError,
    MemoryError,
    UnicodeDecodeError,
    ValueError,  # includes numpy reshape/stack errors
    OverflowError,
    RecursionError,
)


def _clip(n=4, rows=8, cols=8, seed=0):
    rng = np.random.default_rng(seed)
    frames = rng.integers(0, 255, size=(n, rows, cols, 3), dtype=np.uint8)
    return VideoClip(name="fuzz", frames=frames, fps=10.0)


@pytest.fixture(scope="module")
def rvid_bytes(tmp_path_factory):
    path = write_rvid(_clip(), tmp_path_factory.mktemp("rvid") / "clip.rvid")
    return path.read_bytes()


@pytest.fixture(scope="module")
def avi_bytes(tmp_path_factory):
    path = write_avi(_clip(), tmp_path_factory.mktemp("avi") / "clip.avi")
    return path.read_bytes()


@pytest.fixture(scope="module")
def ppm_bytes(tmp_path_factory):
    path = write_ppm(_clip().frames[0], tmp_path_factory.mktemp("ppm") / "f.ppm")
    return path.read_bytes()


def _assert_contained(reader, path):
    """The decoder either succeeds or raises VideoFormatError."""
    try:
        reader(path)
    except VideoFormatError:
        pass
    except FORBIDDEN as exc:  # pragma: no cover - the failure we hunt
        pytest.fail(f"{reader.__name__} leaked {type(exc).__name__}: {exc}")


class TestTruncationSweep:
    """Every prefix of a valid file is handled, byte by byte."""

    def test_rvid_prefixes(self, rvid_bytes, tmp_path):
        path = tmp_path / "cut.rvid"
        for cut in range(0, len(rvid_bytes), 7):
            path.write_bytes(rvid_bytes[:cut])
            _assert_contained(read_rvid, path)

    def test_avi_prefixes(self, avi_bytes, tmp_path):
        path = tmp_path / "cut.avi"
        for cut in range(0, len(avi_bytes), 7):
            path.write_bytes(avi_bytes[:cut])
            _assert_contained(read_avi, path)

    def test_ppm_prefixes(self, ppm_bytes, tmp_path):
        path = tmp_path / "cut.ppm"
        for cut in range(len(ppm_bytes)):
            path.write_bytes(ppm_bytes[:cut])
            _assert_contained(read_ppm, path)


class TestBitFlips:
    """Seeded single-byte corruptions over the whole file."""

    def _sweep(self, reader, blob, path, seed, n=300):
        rng = np.random.default_rng(seed)
        for _ in range(n):
            corrupted = bytearray(blob)
            offset = int(rng.integers(0, len(blob)))
            corrupted[offset] ^= 1 << int(rng.integers(0, 8))
            path.write_bytes(bytes(corrupted))
            _assert_contained(reader, path)

    def test_rvid_bit_flips(self, rvid_bytes, tmp_path):
        self._sweep(read_rvid, rvid_bytes, tmp_path / "flip.rvid", seed=11)

    def test_avi_bit_flips(self, avi_bytes, tmp_path):
        self._sweep(read_avi, avi_bytes, tmp_path / "flip.avi", seed=12)

    def test_ppm_bit_flips(self, ppm_bytes, tmp_path):
        self._sweep(read_ppm, ppm_bytes, tmp_path / "flip.ppm", seed=13)


class TestGarbageInputs:
    def test_random_bytes_never_leak(self, tmp_path):
        rng = np.random.default_rng(99)
        for k, (reader, suffix) in enumerate(
            [(read_rvid, "rvid"), (read_avi, "avi"), (read_ppm, "ppm")]
        ):
            path = tmp_path / f"junk-{k}.{suffix}"
            for size in (0, 1, 12, 64, 512):
                path.write_bytes(rng.bytes(size))
                _assert_contained(reader, path)

    def test_stream_rvid_truncated_mid_frame(self, rvid_bytes, tmp_path):
        path = tmp_path / "mid.rvid"
        path.write_bytes(rvid_bytes[: len(rvid_bytes) - 5])
        with pytest.raises(VideoFormatError):
            list(stream_rvid(path))


class TestAllocationBombs:
    """Declared sizes are checked against the actual file size before
    any buffer sized by them is allocated — a tiny file claiming a
    terabyte payload must fail fast, not OOM."""

    # .rvid layout: 8-byte magic, then <III d I = n, rows, cols, fps,
    # name_len (see repro.video.io._HEADER).
    def test_rvid_huge_declared_frame_count(self, rvid_bytes, tmp_path):
        corrupted = bytearray(rvid_bytes)
        struct.pack_into("<I", corrupted, 8, 2**31 - 1)
        path = tmp_path / "bomb.rvid"
        path.write_bytes(bytes(corrupted))
        with pytest.raises(VideoFormatError, match="payload"):
            read_rvid(path)

    def test_rvid_huge_declared_name_length(self, rvid_bytes, tmp_path):
        corrupted = bytearray(rvid_bytes)
        struct.pack_into("<I", corrupted, 8 + struct.calcsize("<IIId"), 2**31 - 1)
        path = tmp_path / "name.rvid"
        path.write_bytes(bytes(corrupted))
        with pytest.raises(VideoFormatError, match="name"):
            read_rvid(path)

    def test_ppm_huge_declared_dimensions(self, tmp_path):
        path = tmp_path / "bomb.ppm"
        path.write_bytes(b"P6\n999999 999999\n255\n" + b"\x00" * 32)
        with pytest.raises(VideoFormatError):
            read_ppm(path)

    def test_avi_deeply_nested_lists(self, tmp_path):
        # 64 nested LISTs: the walker must cap recursion, not blow the
        # interpreter stack.
        inner = b""
        for _ in range(64):
            inner = b"LIST" + struct.pack("<I", len(inner) + 4) + b"fuzz" + inner
        blob = b"RIFF" + struct.pack("<I", len(inner) + 4) + b"AVI " + inner
        path = tmp_path / "deep.avi"
        path.write_bytes(blob)
        with pytest.raises(VideoFormatError):
            read_avi(path)
