"""Numerical contract of the sign-stream variance (Eqs. 3-6).

The sorted D^v index assumes every variance is finite and >= 0; these
tests pin the edge cases that historically break that assumption in
streaming systems: float32 constant-plus-epsilon streams (catastrophic
cancellation under the naive E[x^2]-E[x]^2 formula), single-frame
shots, and non-finite inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShotError
from repro.features.variance import (
    shot_variance,
    sign_stream_mean,
    sign_stream_variance,
)


class TestAdversarialCancellation:
    def test_float32_constant_plus_epsilon_never_negative(self):
        """The classic killer: a huge constant with a tiny wiggle.

        Under E[x^2] - E[x]^2 in float32 this famously yields a
        *negative* variance; the two-pass float64 path must not.
        """
        rng = np.random.default_rng(7)
        base = np.float32(4096.0)
        for scale in (1e-3, 1e-4, 1e-5):
            signs = (
                base + rng.uniform(-scale, scale, size=(64, 3))
            ).astype(np.float32)
            var = sign_stream_variance(signs)
            assert np.all(var >= 0.0), f"scale={scale}: {var}"
            assert np.all(np.isfinite(np.sqrt(var)))

    def test_exactly_constant_float32_stream_is_zero(self):
        signs = np.full((32, 3), 2.5, dtype=np.float32)
        var = sign_stream_variance(signs)
        assert np.array_equal(var, np.zeros(3))
        # No -0.0 leaking through the clamp.
        assert not np.any(np.signbit(var))

    def test_naive_formula_would_have_failed_here(self):
        """Sanity-check the fixture actually triggers cancellation."""
        rng = np.random.default_rng(0)
        signs = (
            np.float32(1e4) + rng.uniform(-1e-3, 1e-3, size=(64, 3))
        ).astype(np.float32)
        x = signs
        n = np.float32(x.shape[0])
        naive = (
            np.sum(x * x, axis=0, dtype=np.float32) / n
            - (np.sum(x, axis=0, dtype=np.float32) / n) ** 2
        )
        assert np.any(naive < 0.0), "fixture no longer adversarial"
        assert np.all(sign_stream_variance(signs) >= 0.0)


class TestEdgeLengths:
    def test_single_frame_stream_is_exactly_zero(self):
        assert np.array_equal(
            sign_stream_variance(np.array([[3.0, -1.0, 2.0]])), np.zeros(3)
        )
        assert shot_variance(np.array([[9.0, 9.0, 9.0]])) == 0.0

    def test_empty_stream_raises(self):
        with pytest.raises(ShotError):
            sign_stream_variance(np.empty((0, 3)))
        with pytest.raises(ShotError):
            sign_stream_mean(np.empty((0, 3)))

    def test_wrong_shape_raises(self):
        with pytest.raises(ShotError):
            sign_stream_variance(np.zeros((4, 2)))


class TestNonFinite:
    @pytest.mark.parametrize("poison", [np.nan, np.inf, -np.inf])
    def test_non_finite_signs_raise(self, poison):
        signs = np.ones((5, 3))
        signs[2, 1] = poison
        with pytest.raises(ShotError):
            sign_stream_variance(signs)
        with pytest.raises(ShotError):
            sign_stream_mean(signs)


class TestAgreementWithNumpy:
    def test_matches_float64_sample_variance(self):
        rng = np.random.default_rng(3)
        signs = rng.normal(size=(50, 3))
        expected = np.var(signs.astype(np.float64), axis=0, ddof=1)
        np.testing.assert_allclose(
            sign_stream_variance(signs), expected, rtol=1e-12
        )

    def test_scalar_is_channel_mean(self):
        rng = np.random.default_rng(5)
        signs = rng.normal(size=(20, 3))
        assert shot_variance(signs) == pytest.approx(
            float(sign_stream_variance(signs).mean())
        )
