"""Graceful drain: readiness flips, queued jobs finish, the database
persists, and a reload sees every accepted job.

Marked ``drain``; run in the CI overload job."""

import threading
import time

import pytest

from repro.cli import _graceful_shutdown
from repro.errors import ServiceUnavailableError
from repro.service.engine import JobStatus, ServiceEngine
from repro.service.server import create_server
from repro.vdbms.database import VideoDatabase

pytestmark = pytest.mark.drain


def _spec(video_id, seed=0):
    return {
        "source": "synthetic",
        "video_id": video_id,
        "n_shots": 2,
        "frames_per_shot": 4,
        "rows": 16,
        "cols": 16,
        "seed": seed,
    }


class TestEngineDrain:
    def test_drain_completes_queued_jobs_then_rejects_new_ones(self, tmp_path):
        db = VideoDatabase.open(tmp_path / "db")
        engine = ServiceEngine(
            db=db,
            n_workers=1,
            watchdog_interval=0,
            ingest_hook=lambda clip: time.sleep(0.02),
        )
        accepted = [engine.submit_spec(_spec(f"clip-{k}", seed=k)) for k in range(4)]
        engine.begin_drain()
        assert not engine.ready
        assert engine.draining
        with pytest.raises(ServiceUnavailableError):
            engine.submit_spec(_spec("too-late"))
        engine.shutdown(timeout=60)
        # Every job accepted before the drain completed, none abandoned.
        for job in accepted:
            assert engine.job(job.job_id).status is JobStatus.DONE
        assert engine.metrics.counter("ingest_abandoned") == 0
        # A durable reload sees every accepted job's video.
        reloaded = VideoDatabase.load(tmp_path / "db")
        for k in range(4):
            assert f"clip-{k}" in reloaded.catalog

    def test_shutdown_settles_unfinished_jobs_as_failed(self):
        gate = threading.Event()
        engine = ServiceEngine(
            n_workers=1,
            watchdog_interval=0,
            ingest_hook=lambda clip: gate.wait(30),
        )
        jobs = [engine.submit_spec(_spec(f"held-{k}", seed=k)) for k in range(2)]
        # A tiny drain budget cannot cover the held jobs; shutdown must
        # still settle them so no client polls forever.
        engine.shutdown(timeout=0.05)
        for job in jobs:
            settled = engine.job(job.job_id)
            assert settled.done_event.is_set()
            assert settled.status is JobStatus.FAILED
        assert engine.metrics.counter("ingest_abandoned") >= 1
        gate.set()  # unblock the parked worker thread

    def test_begin_drain_is_idempotent(self):
        engine = ServiceEngine(n_workers=1, watchdog_interval=0)
        try:
            engine.begin_drain()
            engine.begin_drain()
            assert engine.metrics.counter("drains_started") == 1
        finally:
            engine.shutdown()


class TestGracefulShutdownHelper:
    def test_helper_drains_and_stops_the_serve_loop(self, tmp_path):
        """The SIGTERM handler body: drain in-flight work, stop serving."""
        db = VideoDatabase.open(tmp_path / "db")
        engine = ServiceEngine(
            db=db,
            n_workers=1,
            watchdog_interval=0,
            ingest_hook=lambda clip: time.sleep(0.02),
        )
        server = create_server(engine)
        serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
        serve_thread.start()
        accepted = [engine.submit_spec(_spec(f"mid-{k}", seed=k)) for k in range(3)]
        try:
            _graceful_shutdown(server, engine, drain_timeout=60)
            serve_thread.join(timeout=10)
            assert not serve_thread.is_alive(), "serve loop did not stop"
            for job in accepted:
                assert engine.job(job.job_id).status is JobStatus.DONE
        finally:
            server.server_close()
            engine.shutdown()
        reloaded = VideoDatabase.load(tmp_path / "db")
        for k in range(3):
            assert f"mid-{k}" in reloaded.catalog

    def test_mid_ingest_sigterm_durability_contract(self, tmp_path):
        """Accepted-means-durable: every job accepted before the drain
        is visible after a full stop/reload cycle."""
        db = VideoDatabase.open(tmp_path / "db")
        engine = ServiceEngine(db=db, n_workers=2, watchdog_interval=0)
        server = create_server(engine)
        serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
        serve_thread.start()
        accepted = []
        rejected_late = 0
        try:
            for k in range(6):
                accepted.append(engine.submit_spec(_spec(f"load-{k}", seed=k)))
            _graceful_shutdown(server, engine, drain_timeout=120)
            serve_thread.join(timeout=10)
            try:
                engine.submit_spec(_spec("post-drain"))
            except ServiceUnavailableError:
                rejected_late = 1
        finally:
            server.server_close()
            engine.shutdown(timeout=120)
        assert rejected_late == 1
        done = [j for j in accepted if engine.job(j.job_id).status is JobStatus.DONE]
        assert len(done) == len(accepted)
        reloaded = VideoDatabase.load(tmp_path / "db")
        for k in range(6):
            assert f"load-{k}" in reloaded.catalog
