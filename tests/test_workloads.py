"""Tests for repro.workloads (figure5, friends, movies, table5, taxonomy)."""

import numpy as np
import pytest

from repro.errors import CatalogError, WorkloadError
from repro.scenetree.relationship import related_shots
from repro.synth.genres import GENRE_MODELS
from repro.workloads.figure5 import FIGURE5_GROUPS, FIGURE5_SHOT_RANGES
from repro.workloads.table5 import TABLE5_CLIPS, generate_table5_clip
from repro.workloads.taxonomy import (
    FORMS,
    GENRES,
    PAPER_CATEGORY_COUNT,
    VideoCategory,
)


class TestFigure5Workload:
    def test_frame_ranges_match_table3(self, figure5):
        _, truth = figure5
        measured = tuple((s + 1, e) for s, e in truth.shot_ranges)
        assert measured == FIGURE5_SHOT_RANGES

    def test_total_625_frames(self, figure5):
        clip, _ = figure5
        assert len(clip) == 625

    def test_groups(self, figure5):
        _, truth = figure5
        assert truth.groups == FIGURE5_GROUPS

    def test_detection_is_exact(self, figure5, figure5_detection):
        _, truth = figure5
        assert tuple(figure5_detection.boundaries) == truth.boundaries

    def test_same_letter_shots_are_related(self, figure5_detection):
        """A~A1~A2, B~B1, C~C1 per RELATIONSHIP."""
        signs = [figure5_detection.shot_signs_ba(s) for s in figure5_detection.shots]
        for i, j in [(0, 2), (2, 5), (0, 5), (1, 3), (4, 6)]:
            assert related_shots(signs[i], signs[j]), (i, j)

    def test_cross_letter_shots_unrelated(self, figure5_detection):
        signs = [figure5_detection.shot_signs_ba(s) for s in figure5_detection.shots]
        for i, j in [(0, 1), (0, 4), (1, 4), (0, 7), (4, 7), (1, 7)]:
            assert not related_shots(signs[i], signs[j]), (i, j)

    def test_d_takes_bridge_through_d1(self, figure5_detection):
        """D~D1 and D1~D2 (the lighting overlap); D relates forward."""
        signs = [figure5_detection.shot_signs_ba(s) for s in figure5_detection.shots]
        assert related_shots(signs[8], signs[7])   # D1 ~ D
        assert related_shots(signs[9], signs[8])   # D2 ~ D1


class TestFriendsWorkload:
    def test_twelve_shots(self, friends):
        _, truth = friends
        assert truth.n_shots == 12

    def test_one_minute_at_3fps(self, friends):
        clip, _ = friends
        assert len(clip) == 180
        assert clip.fps == 3.0

    def test_detection_is_exact(self, friends, friends_detection):
        _, truth = friends
        assert tuple(friends_detection.boundaries) == truth.boundaries

    def test_story_structure_groups(self, friends):
        _, truth = friends
        assert truth.groups.count("table") == 4
        assert truth.groups.count("entrance") == 1


class TestMovieCorpus:
    def test_both_movies_present(self, small_movie_corpus):
        names = [clip.name for clip, _ in small_movie_corpus]
        assert names == ["Simon Birch", "Wag the Dog"]

    def test_archetypes_labeled(self, small_movie_corpus):
        for _, truth in small_movie_corpus:
            labeled = [a for a in truth.archetypes if a is not None]
            assert len(labeled) >= truth.n_shots // 3

    def test_deterministic(self):
        from repro.workloads.movies import make_wag_the_dog

        a, _ = make_wag_the_dog(n_shots=5, seed=77)
        b, _ = make_wag_the_dog(n_shots=5, seed=77)
        assert np.array_equal(a.frames, b.frames)

    def test_consecutive_backgrounds_differ(self, small_movie_corpus):
        """The resample loop keeps adjacent cuts decisive."""
        for clip, truth in small_movie_corpus:
            for (s1, e1), (s2, e2) in zip(truth.shot_ranges, truth.shot_ranges[1:]):
                last = clip.frames[e1 - 1].astype(np.int16)
                first = clip.frames[s2].astype(np.int16)
                # Mean frame difference is visible (not a subtle step).
                assert np.abs(last - first).mean() > 5.0


class TestTable5Workload:
    def test_twenty_two_clips(self):
        assert len(TABLE5_CLIPS) == 22

    def test_paper_metadata_totals(self):
        assert sum(c.paper_shot_changes for c in TABLE5_CLIPS) == 3629

    def test_six_categories(self):
        assert len({c.category for c in TABLE5_CLIPS}) == 6

    def test_genres_exist(self):
        for clip in TABLE5_CLIPS:
            assert clip.genre in GENRE_MODELS

    def test_scaled_shot_counts(self):
        clip = TABLE5_CLIPS[0]
        assert clip.n_shots(1.0) == clip.paper_shot_changes + 1
        assert clip.n_shots(0.001) == 8  # floor

    def test_generate_one_clip(self):
        clip_spec = TABLE5_CLIPS[5]  # the shortest clip
        clip, truth = generate_table5_clip(clip_spec, scale=0.15)
        assert truth.n_shots == clip_spec.n_shots(0.15)
        assert clip.name == clip_spec.name

    def test_generate_rejects_bad_scale(self):
        with pytest.raises(WorkloadError):
            generate_table5_clip(TABLE5_CLIPS[0], scale=0.0)


class TestTaxonomy:
    def test_paper_capacity_argument(self):
        assert PAPER_CATEGORY_COUNT == 4655

    def test_vocabularies_nonempty_subsets(self):
        assert 30 <= len(GENRES) <= 133
        assert 10 <= len(FORMS) <= 35

    def test_paper_example_brave_heart(self):
        category = VideoCategory(
            genres=("adventure", "biographical"), forms=("feature",)
        )
        assert category.label == "adventure and biographical feature"

    def test_paper_example_dr_zhivago(self):
        category = VideoCategory(
            genres=("adaptation", "historical", "romance"), forms=("feature",)
        )
        assert category.label == "adaptation, historical, and romance feature"

    def test_rejects_unknown_genre(self):
        with pytest.raises(CatalogError):
            VideoCategory(genres=("jazzercise",))

    def test_rejects_empty_forms(self):
        with pytest.raises(CatalogError):
            VideoCategory(forms=())

    def test_overlap_rules(self):
        a = VideoCategory(genres=("comedy",), forms=("feature",))
        b = VideoCategory(genres=("comedy", "romance"), forms=("feature",))
        c = VideoCategory(genres=("western",), forms=("feature",))
        d = VideoCategory(genres=("comedy",), forms=("animation",))
        assert a.overlaps(b)
        assert not a.overlaps(c)
        assert not a.overlaps(d)  # same genre, disjoint forms

    def test_genreless_category_overlaps_any_genre(self):
        wildcard = VideoCategory(forms=("feature",))
        specific = VideoCategory(genres=("war",), forms=("feature",))
        assert wildcard.overlaps(specific)
