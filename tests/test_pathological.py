"""Failure-injection and pathological-input tests across the stack."""

import numpy as np
import pytest

from repro.config import RegionConfig
from repro.errors import DimensionError, ReproError
from repro.geometry.regions import compute_frame_geometry
from repro.sbd.detector import CameraTrackingDetector
from repro.scenetree.builder import SceneTreeBuilder
from repro.signature.extract import SignatureExtractor
from repro.vdbms.database import VideoDatabase
from repro.video.clip import VideoClip


class TestExtremePixelValues:
    @pytest.mark.parametrize("value", [0, 255])
    def test_saturated_clip(self, value):
        """All-black / all-white clips flow through without overflow."""
        frames = np.full((8, 60, 80, 3), value, dtype=np.uint8)
        result = CameraTrackingDetector().detect(VideoClip("sat", frames))
        assert result.n_shots == 1
        assert np.all(result.features.signs_ba == value)

    def test_max_contrast_alternation(self):
        """Frame-by-frame black/white strobing — every pair is a
        boundary candidate; the min-length filter keeps it one shot."""
        frames = np.zeros((12, 60, 80, 3), dtype=np.uint8)
        frames[1::2] = 255
        result = CameraTrackingDetector().detect(VideoClip("strobe", frames))
        assert all(len(s) >= 3 for s in result.shots)

    def test_pure_noise_clip(self):
        rng = np.random.default_rng(0)
        frames = rng.integers(0, 255, size=(10, 60, 80, 3)).astype(np.uint8)
        result = CameraTrackingDetector().detect(VideoClip("noise", frames))
        assert result.n_shots >= 1
        assert result.shots[-1].stop == 10


class TestExtremeGeometries:
    def test_minimum_viable_frame(self):
        """The smallest frame the ⊓ geometry supports."""
        geometry = compute_frame_geometry(4, 4)
        assert geometry.w >= 1
        frames = np.zeros((4, 4, 4, 3), dtype=np.uint8)
        extractor = SignatureExtractor(4, 4)
        features = extractor.extract_frames(frames)
        assert features.signs_ba.shape == (4, 3)

    def test_wide_aspect_ratio(self):
        extractor = SignatureExtractor(60, 320)
        frames = np.zeros((2, 60, 320, 3), dtype=np.uint8)
        assert len(extractor.extract_frames(frames)) == 2

    def test_tall_aspect_ratio(self):
        extractor = SignatureExtractor(320, 60)
        frames = np.zeros((2, 320, 60, 3), dtype=np.uint8)
        assert len(extractor.extract_frames(frames)) == 2

    def test_large_strip_fraction_rejected_when_infeasible(self):
        """A strip as tall as the frame leaves no object area."""
        with pytest.raises(DimensionError):
            compute_frame_geometry(4, 10, RegionConfig(width_fraction=0.49))

    @pytest.mark.parametrize("rows,cols", [(480, 640), (240, 352)])
    def test_larger_frames(self, rows, cols):
        geometry = compute_frame_geometry(rows, cols)
        frames = np.zeros((2, rows, cols, 3), dtype=np.uint8)
        extractor = SignatureExtractor(rows, cols)
        features = extractor.extract_frames(frames)
        assert features.signatures_ba.shape[1] == geometry.l


class TestDegenerateTrees:
    def test_many_identical_shots(self):
        signs = [np.full((4, 3), 100, dtype=np.uint8) for _ in range(30)]
        tree = SceneTreeBuilder().build(signs)
        tree.validate()
        assert tree.n_shots == 30

    def test_alternating_two_scenes(self):
        signs = [
            np.full((4, 3), 40 if k % 2 == 0 else 200, dtype=np.uint8)
            for k in range(20)
        ]
        tree = SceneTreeBuilder().build(signs)
        tree.validate()

    def test_monotone_drift_chain(self):
        """Each shot relates only to its neighbor: a chain of fallbacks."""
        signs = [np.full((4, 3), 40 + 20 * k, dtype=np.uint8) for k in range(10)]
        tree = SceneTreeBuilder().build(signs)
        tree.validate()


class TestDatabaseEdgeCases:
    def test_single_frame_video(self):
        clip = VideoClip("one-frame", np.zeros((1, 60, 80, 3), dtype=np.uint8))
        db = VideoDatabase()
        report = db.ingest(clip)
        assert report.n_shots == 1
        answer = db.query(var_ba=0.0, var_oa=0.0)
        assert len(answer.matches) == 1

    def test_query_on_empty_database(self):
        db = VideoDatabase()
        answer = db.query(var_ba=4.0, var_oa=1.0)
        assert answer.matches == []
        assert answer.suggestions == []

    def test_ask_on_empty_database(self):
        db = VideoDatabase()
        answer = db.ask("background calm, foreground calm")
        assert len(answer) == 0

    def test_save_load_empty_database(self, tmp_path):
        db = VideoDatabase()
        root = db.save(tmp_path / "empty")
        loaded = VideoDatabase.load(root)
        assert len(loaded.catalog) == 0
        assert len(loaded.index) == 0

    def test_all_errors_share_base(self):
        """Every library error is catchable as ReproError."""
        db = VideoDatabase()
        with pytest.raises(ReproError):
            db.scene_tree("missing")
        with pytest.raises(ReproError):
            db.ask("gibberish query")
        with pytest.raises(ReproError):
            compute_frame_geometry(1, 1)
