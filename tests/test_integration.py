"""End-to-end integration tests across module boundaries."""

import numpy as np
import pytest

from repro.eval.sbd_metrics import score_boundaries
from repro.eval.tree_metrics import tree_quality
from repro.features.vector import extract_shot_features
from repro.index.query import VarianceQuery, search
from repro.index.sorted_index import SortedVarianceIndex
from repro.index.table import IndexTable
from repro.sbd.detector import CameraTrackingDetector, validate_shots_cover
from repro.scenetree.builder import SceneTreeBuilder
from repro.synth.genres import GENRE_MODELS, generate_genre_clip
from repro.vdbms.database import VideoDatabase
from repro.video.io import read_rvid, write_rvid
from repro.video.sampling import resample_fps


class TestFullPipelineOnGenreClip:
    """Generate → detect → tree → features → index → query, one flow."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        clip, truth = generate_genre_clip(
            GENRE_MODELS["news"], "integration-news", n_shots=15, seed=99
        )
        detection = CameraTrackingDetector().detect(clip)
        tree = SceneTreeBuilder().build_from_detection(detection)
        table = IndexTable()
        table.add_detection_result(detection)
        return clip, truth, detection, tree, table

    def test_detection_quality(self, pipeline):
        _, truth, detection, _, _ = pipeline
        score = score_boundaries(truth.boundaries, detection.boundaries, tolerance=1)
        assert score.recall >= 0.7
        assert score.precision >= 0.7

    def test_shots_tile_clip(self, pipeline):
        clip, _, detection, _, _ = pipeline
        validate_shots_cover(detection.shots, len(clip))

    def test_tree_covers_every_shot(self, pipeline):
        _, _, detection, tree, _ = pipeline
        tree.validate()
        assert tree.n_shots == detection.n_shots

    def test_tree_quality_against_ground_truth(self, pipeline):
        _, truth, detection, tree, _ = pipeline
        if detection.n_shots == truth.n_shots:
            quality = tree_quality(tree, list(truth.groups))
            assert quality.pair_agreement > 0.4

    def test_index_has_every_shot(self, pipeline):
        _, _, detection, _, table = pipeline
        assert len(table) == detection.n_shots

    def test_query_round_trips_through_sorted_index(self, pipeline):
        _, _, detection, _, table = pipeline
        index = SortedVarianceIndex.from_table(table)
        vectors = extract_shot_features(detection)
        for vector in vectors[:5]:
            query = VarianceQuery.from_features(vector)
            scan = [(e.video_id, e.shot_number) for e in search(table, query)]
            fast = [(e.video_id, e.shot_number) for e in index.search(query)]
            assert scan == fast
            assert len(scan) >= 1  # the probe itself always matches


class TestFpsDecimationPipeline:
    def test_30fps_source_detected_after_decimation(self):
        """The paper's workflow: digitize at 30 fps, analyze at 3 fps."""
        clip30, truth = generate_genre_clip(
            GENRE_MODELS["drama"], "hi-rate", n_shots=6, seed=5, fps=3.0
        )
        # Simulate a 30 fps source by repeating frames 10x, then decimate.
        frames30 = np.repeat(clip30.frames, 10, axis=0)
        from repro.video.clip import VideoClip

        source = VideoClip("hi-rate-30", frames30, fps=30.0)
        decimated = resample_fps(source, 3.0)
        assert len(decimated) == len(clip30)
        detection = CameraTrackingDetector().detect(decimated)
        score = score_boundaries(truth.boundaries, detection.boundaries, tolerance=1)
        assert score.recall >= 0.6


class TestPersistenceLoop:
    def test_disk_round_trip_preserves_query_semantics(self, tmp_path, figure5):
        clip, truth = figure5
        db = VideoDatabase()
        db.ingest(clip, archetypes=truth.archetypes_for_ranges)
        # Persist the raw clip too, reload it, and compare re-ingest.
        path = write_rvid(clip, tmp_path / "fig5.rvid")
        reloaded_clip = read_rvid(path)
        db2 = VideoDatabase()
        db2.ingest(reloaded_clip)
        assert [e.to_row() for e in db.index.entries] == [
            e.to_row() for e in db2.index.entries
        ]

    def test_database_directory_round_trip(self, tmp_path, figure5):
        clip, _ = figure5
        db = VideoDatabase()
        db.ingest(clip)
        root = db.save(tmp_path / "store")
        loaded = VideoDatabase.load(root)
        probe = loaded.shot_entry("figure5", 9)
        answer = loaded.query(
            probe.features.var_ba, probe.features.var_oa, limit=3
        )
        assert len(answer.matches) >= 1
