"""Consistent-hash router properties: determinism, balance, movement."""

from __future__ import annotations

import pytest

from repro.cluster import DEFAULT_REPLICAS, ConsistentHashRouter
from repro.errors import ClusterError

pytestmark = pytest.mark.cluster


def _ids(n: int) -> list[str]:
    return [f"video-{k:05d}" for k in range(n)]


class TestDeterminism:
    def test_same_parameters_same_routing(self):
        a = ConsistentHashRouter(4)
        b = ConsistentHashRouter(4)
        for video_id in _ids(500):
            assert a.shard_for(video_id) == b.shard_for(video_id)

    def test_routing_survives_serialization(self):
        router = ConsistentHashRouter(5, replicas=32)
        clone = ConsistentHashRouter.from_dict(router.to_dict())
        assert clone.n_shards == 5
        assert clone.replicas == 32
        for video_id in _ids(300):
            assert router.shard_for(video_id) == clone.shard_for(video_id)

    def test_shard_ids_in_range(self):
        router = ConsistentHashRouter(7)
        for video_id in _ids(1000):
            assert 0 <= router.shard_for(video_id) < 7


class TestBalance:
    def test_every_shard_receives_videos(self):
        router = ConsistentHashRouter(8)
        groups = router.assignment(_ids(2000))
        assert set(groups) == set(range(8))
        assert all(groups[shard] for shard in range(8))

    def test_no_shard_dominates(self):
        # With 64 vnodes per shard the largest shard should stay within
        # a small factor of the mean on a few thousand keys.
        router = ConsistentHashRouter(4)
        groups = router.assignment(_ids(4000))
        sizes = [len(groups[shard]) for shard in range(4)]
        assert max(sizes) < 2.5 * (sum(sizes) / len(sizes))

    def test_single_shard_gets_everything(self):
        router = ConsistentHashRouter(1)
        groups = router.assignment(_ids(100))
        assert len(groups[0]) == 100


class TestMinimalMovement:
    def test_growing_moves_a_small_fraction(self):
        """N -> N+1 should relocate roughly 1/(N+1) of the corpus."""
        ids = _ids(3000)
        before = ConsistentHashRouter(4)
        after = ConsistentHashRouter(5)
        moved = sum(
            1 for v in ids if before.shard_for(v) != after.shard_for(v)
        )
        # Ideal is 20%; allow generous slack but prove it is nowhere
        # near the ~80% a modulo-hash rehash would move.
        assert moved / len(ids) < 0.45

    def test_moved_videos_land_on_the_new_shard_mostly(self):
        ids = _ids(3000)
        before = ConsistentHashRouter(3)
        after = ConsistentHashRouter(4)
        moved_to_new = moved_elsewhere = 0
        for v in ids:
            old, new = before.shard_for(v), after.shard_for(v)
            if old != new:
                if new == 3:
                    moved_to_new += 1
                else:
                    moved_elsewhere += 1
        assert moved_to_new > 0
        # Consistent hashing: churn between *surviving* shards is zero.
        assert moved_elsewhere == 0


class TestValidation:
    def test_rejects_zero_shards(self):
        with pytest.raises(ClusterError):
            ConsistentHashRouter(0)

    def test_rejects_zero_replicas(self):
        with pytest.raises(ClusterError):
            ConsistentHashRouter(2, replicas=0)

    def test_rejects_unknown_format_version(self):
        with pytest.raises(ClusterError):
            ConsistentHashRouter.from_dict({"version": 99, "n_shards": 2})

    def test_default_replicas_round_trip(self):
        payload = ConsistentHashRouter(2).to_dict()
        assert payload["replicas"] == DEFAULT_REPLICAS
