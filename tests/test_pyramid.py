"""Tests for repro.pyramid (kernel + REDUCE, Fig. 3)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import DimensionError
from repro.pyramid.kernel import DEFAULT_A, generating_kernel
from repro.pyramid.reduce import (
    reduce_line,
    reduce_strip_to_signature,
    reduce_to_sign,
    reduction_schedule,
    signature_and_sign,
)


class TestKernel:
    def test_burt_adelson_default(self):
        kernel = generating_kernel(0.4)
        assert np.allclose(kernel, [0.05, 0.25, 0.4, 0.25, 0.05])

    @given(st.floats(min_value=0.01, max_value=0.5))
    def test_normalized_and_symmetric(self, a):
        kernel = generating_kernel(a)
        assert kernel.sum() == pytest.approx(1.0)
        assert np.allclose(kernel, kernel[::-1])

    @given(st.floats(min_value=0.01, max_value=0.5))
    def test_equal_contribution(self, a):
        """Every input pixel contributes equally: a + 2c == 2b."""
        c, b, a_, _, _ = generating_kernel(a)
        assert a_ + 2 * c == pytest.approx(2 * b)

    def test_rejects_out_of_range(self):
        with pytest.raises(DimensionError):
            generating_kernel(0.6)
        with pytest.raises(DimensionError):
            generating_kernel(0.0)


class TestReduceLine:
    def test_five_to_one(self):
        line = np.array([[10, 10, 10]] * 5, dtype=np.float64)
        out = reduce_line(line)
        assert out.shape == (1, 3)
        assert np.allclose(out, 10.0)

    def test_thirteen_to_five(self):
        line = np.zeros((13, 3))
        assert reduce_line(line).shape == (5, 3)

    def test_matches_explicit_convolution(self):
        rng = np.random.default_rng(7)
        line = rng.uniform(0, 255, size=(29, 3))
        kernel = generating_kernel(DEFAULT_A)
        out = reduce_line(line)
        expected = np.stack(
            [
                sum(kernel[t] * line[2 * k + t] for t in range(5))
                for k in range((29 - 5) // 2 + 1)
            ]
        )
        assert np.allclose(out, expected)

    def test_axis_parameter(self):
        data = np.zeros((4, 13, 3))
        out = reduce_line(data, axis=1)
        assert out.shape == (4, 5, 3)

    def test_axis_reduction_matches_axis0(self):
        rng = np.random.default_rng(3)
        data = rng.uniform(0, 255, size=(13, 6, 3))
        via_axis0 = reduce_line(data, axis=0)
        via_axis1 = np.swapaxes(reduce_line(np.swapaxes(data, 0, 1), axis=1), 0, 1)
        assert np.allclose(via_axis0, via_axis1)

    @pytest.mark.parametrize("n", [2, 3, 4, 6, 12, 14])
    def test_rejects_non_size_set_lengths(self, n):
        with pytest.raises(DimensionError):
            reduce_line(np.zeros((n, 3)))

    def test_rejects_length_one(self):
        with pytest.raises(DimensionError):
            reduce_line(np.zeros((1, 3)))

    @given(st.sampled_from([5, 13, 29, 61]), st.floats(min_value=0, max_value=255))
    def test_constant_input_constant_output(self, n, value):
        line = np.full((n, 3), value)
        out = reduce_line(line)
        assert np.allclose(out, value)

    @given(st.sampled_from([5, 13, 29]))
    def test_linearity(self, n):
        rng = np.random.default_rng(n)
        x = rng.uniform(0, 255, size=(n, 3))
        y = rng.uniform(0, 255, size=(n, 3))
        assert np.allclose(
            reduce_line(x + y), reduce_line(x) + reduce_line(y)
        )

    @given(st.sampled_from([5, 13, 29, 61]))
    def test_output_within_input_range(self, n):
        """Convex weights: output bounded by input min/max."""
        rng = np.random.default_rng(n + 1)
        line = rng.uniform(0, 255, size=(n, 3))
        out = reduce_line(line)
        assert out.min() >= line.min() - 1e-9
        assert out.max() <= line.max() + 1e-9


class TestSchedule:
    def test_paper_sequence(self):
        assert reduction_schedule(125) == [125, 61, 29, 13, 5, 1]

    def test_single(self):
        assert reduction_schedule(1) == [1]

    def test_rejects_non_member(self):
        with pytest.raises(DimensionError):
            reduction_schedule(12)


class TestStripReduction:
    def test_figure3_shape_13x5(self):
        """The paper's illustration: a 13x5 TBA -> signature of 13 -> sign."""
        strip = np.random.default_rng(0).uniform(0, 255, size=(5, 13, 3))
        signature = reduce_strip_to_signature(strip)
        assert signature.shape == (13, 3)
        signature2, sign = signature_and_sign(strip)
        assert np.allclose(signature, signature2)
        assert sign.shape == (3,)

    def test_real_tba_shape(self):
        strip = np.zeros((13, 253, 3))
        assert reduce_strip_to_signature(strip).shape == (253, 3)

    def test_reduce_to_sign_on_foa(self):
        region = np.full((125, 125, 3), 77.0)
        sign = reduce_to_sign(region)
        assert sign.shape == (3,)
        assert np.allclose(sign, 77.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(DimensionError):
            reduce_strip_to_signature(np.zeros((5, 13)))

    def test_sign_consistent_with_signature_reduction(self):
        rng = np.random.default_rng(5)
        strip = rng.uniform(0, 255, size=(13, 61, 3))
        signature, sign = signature_and_sign(strip)
        assert np.allclose(sign, reduce_to_sign(strip))


class TestReduceDtypeHandling:
    """reduce_line keeps the kernel taps in float64 for every input dtype.

    Casting the taps down to float32 would perturb each by ~1e-8 and
    bias all downstream features; the float32 path instead multiplies
    float32 data by exact float64 taps and only the accumulator stays
    float32 (tolerance note in the reduce_line docstring).
    """

    def test_float32_input_stays_float32(self):
        line = np.random.default_rng(0).uniform(0, 255, 13).astype(np.float32)
        assert reduce_line(line).dtype == np.float32

    def test_integer_input_promotes_to_float64(self):
        line = np.arange(13, dtype=np.uint8)
        assert reduce_line(line).dtype == np.float64

    def test_float32_tracks_float64_within_tolerance(self):
        rng = np.random.default_rng(42)
        data64 = rng.uniform(0, 255, size=(4, 125, 3))
        data32 = data64.astype(np.float32)
        out64, out32 = data64, data32
        while out64.shape[1] > 1:
            out64 = reduce_line(out64, axis=1)
            out32 = reduce_line(out32, axis=1)
        assert np.abs(out32.astype(np.float64) - out64).max() < 1e-3

    def test_dtypes_agree_after_quantization(self):
        """Satellite check: float32 and float64 chains quantize identically."""
        from repro.signature.extract import _quantize

        rng = np.random.default_rng(7)
        data64 = rng.integers(0, 256, size=(8, 253, 3)).astype(np.float64)
        data32 = data64.astype(np.float32)
        out64, out32 = data64, data32
        while out64.shape[1] > 1:
            out64 = reduce_line(out64, axis=1)
            out32 = reduce_line(out32, axis=1)
        np.testing.assert_array_equal(_quantize(out32), _quantize(out64))
