"""Tests for repro.sbd (shots, stage tests, the detector)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SBDConfig
from repro.errors import ShotError
from repro.sbd.detector import CameraTrackingDetector, validate_shots_cover
from repro.sbd.shots import Shot, shots_from_boundaries
from repro.sbd.stages import (
    longest_match_run,
    stage1_sign_test,
    stage2_signature_test,
    stage3_shift_match,
)
from repro.video.clip import VideoClip


class TestShot:
    def test_paper_numbering(self):
        shot = Shot(index=0, start=0, stop=75)
        assert shot.number == 1
        assert shot.start_frame_number == 1
        assert shot.end_frame_number == 75
        assert len(shot) == 75

    def test_contains(self):
        shot = Shot(index=1, start=75, stop=100)
        assert 75 in shot and 99 in shot
        assert 100 not in shot and 74 not in shot

    def test_frame_slice(self):
        shot = Shot(index=0, start=3, stop=7)
        data = np.arange(10)
        assert np.array_equal(data[shot.frame_slice], [3, 4, 5, 6])

    def test_rejects_empty_range(self):
        with pytest.raises(ShotError):
            Shot(index=0, start=5, stop=5)


class TestShotsFromBoundaries:
    def test_basic(self):
        shots = shots_from_boundaries(10, [4, 7])
        assert [(s.start, s.stop) for s in shots] == [(0, 4), (4, 7), (7, 10)]

    def test_no_boundaries_single_shot(self):
        shots = shots_from_boundaries(5, [])
        assert [(s.start, s.stop) for s in shots] == [(0, 5)]

    def test_duplicate_and_zero_boundaries_ignored(self):
        shots = shots_from_boundaries(10, [0, 4, 4])
        assert [(s.start, s.stop) for s in shots] == [(0, 4), (4, 10)]

    def test_rejects_out_of_range(self):
        with pytest.raises(ShotError):
            shots_from_boundaries(10, [10])

    @given(
        st.integers(min_value=1, max_value=200),
        st.lists(st.integers(min_value=1, max_value=199), max_size=20),
    )
    def test_property_tiles_clip(self, n_frames, raw):
        boundaries = [b for b in raw if b < n_frames]
        shots = shots_from_boundaries(n_frames, boundaries)
        validate_shots_cover(shots, n_frames)
        assert sum(len(s) for s in shots) == n_frames


class TestStageTests:
    def test_stage1_accepts_close_signs(self):
        assert stage1_sign_test(np.array([100, 100, 100]), np.array([110, 90, 100]), 0.10)

    def test_stage1_rejects_far_signs(self):
        assert not stage1_sign_test(np.array([100, 100, 100]), np.array([140, 100, 100]), 0.10)

    def test_stage2_positional(self):
        a = np.full((61, 3), 100.0)
        b = a + 5.0
        assert stage2_signature_test(a, b, 0.10)
        c = a + 30.0
        assert not stage2_signature_test(a, c, 0.10)

    def test_stage2_rejects_mismatched_shapes(self):
        with pytest.raises(Exception):
            stage2_signature_test(np.zeros((13, 3)), np.zeros((29, 3)), 0.1)

    def test_longest_run_identical(self):
        sig = np.tile(np.arange(61)[:, None] * 4.0, (1, 3))
        assert longest_match_run(sig, sig, 0.10) == 61

    def test_longest_run_disjoint(self):
        a = np.zeros((13, 3))
        b = np.full((13, 3), 200.0)
        assert longest_match_run(a, b, 0.10) == 0

    def test_longest_run_tracks_shift(self):
        """A shifted copy of a smooth unique ramp matches on a diagonal."""
        base = np.tile((np.arange(80) * 3.0)[:, None], (1, 3))
        a, b = base[:61], base[10 : 10 + 61]  # b is a shifted view
        run = longest_match_run(a, b, 0.02)
        assert run >= 45  # 61 - shift of 10, with tolerance slack

    def test_max_shift_restricts_search(self):
        base = np.tile((np.arange(80) * 3.0)[:, None], (1, 3))
        a, b = base[:61], base[30 : 30 + 61]
        unrestricted = longest_match_run(a, b, 0.02)
        restricted = longest_match_run(a, b, 0.02, max_shift=5)
        assert unrestricted > restricted

    def test_stage3_threshold(self):
        sig = np.tile(np.arange(61)[:, None] * 4.0, (1, 3))
        assert stage3_shift_match(sig, sig, 0.10, min_run_fraction=0.9)
        far = sig + 250.0
        assert not stage3_shift_match(sig, np.clip(far, 0, 255), 0.10, 0.3)

    @given(st.integers(min_value=0, max_value=250))
    def test_property_run_symmetricish(self, offset):
        """Swapping arguments never changes the longest run."""
        rng = np.random.default_rng(offset)
        a = rng.uniform(0, 255, size=(29, 3))
        b = rng.uniform(0, 255, size=(29, 3))
        assert longest_match_run(a, b, 0.1) == longest_match_run(b, a, 0.1)


def _cut_clip():
    frames = np.zeros((24, 120, 160, 3), dtype=np.uint8)
    frames[:8] = 60
    frames[8:16] = 160
    frames[16:] = 230
    return VideoClip("cuts", frames, fps=3.0)


class TestDetector:
    def test_detects_hard_cuts(self):
        result = CameraTrackingDetector().detect(_cut_clip())
        assert result.boundaries == [8, 16]
        assert result.n_shots == 3

    def test_single_frame_clip(self):
        clip = VideoClip("one", np.zeros((1, 60, 80, 3), dtype=np.uint8))
        result = CameraTrackingDetector().detect(clip)
        assert result.n_shots == 1
        assert result.boundaries == []

    def test_uniform_clip_single_shot(self):
        frames = np.full((12, 60, 80, 3), 128, dtype=np.uint8)
        result = CameraTrackingDetector().detect(VideoClip("flat", frames))
        assert result.n_shots == 1
        assert result.stage_counts.stage1_same == 11

    def test_shots_cover_clip(self):
        result = CameraTrackingDetector().detect(_cut_clip())
        validate_shots_cover(result.shots, 24)

    def test_stage_counts_total(self):
        result = CameraTrackingDetector().detect(_cut_clip())
        assert result.stage_counts.total_pairs == 23

    def test_min_shot_length_filter(self):
        """A 1-frame flash between two long shots must not survive as a shot."""
        frames = np.zeros((21, 120, 160, 3), dtype=np.uint8)
        frames[:10] = 60
        frames[10] = 255          # flash frame
        frames[11:] = 60
        result = CameraTrackingDetector().detect(VideoClip("flash", frames))
        assert all(len(s) >= 3 for s in result.shots)

    def test_min_shot_filter_disabled(self):
        frames = np.zeros((21, 120, 160, 3), dtype=np.uint8)
        frames[:10] = 60
        frames[10] = 255
        frames[11:] = 60
        config = SBDConfig(min_shot_frames=1)
        result = CameraTrackingDetector(config=config).detect(VideoClip("flash", frames))
        assert any(len(s) == 1 for s in result.shots)

    def test_shot_sign_accessors(self):
        result = CameraTrackingDetector().detect(_cut_clip())
        shot = result.shots[0]
        assert result.shot_signs_ba(shot).shape == (8, 3)
        assert result.shot_signs_oa(shot).shape == (8, 3)

    def test_detect_from_features_reuses_extraction(self):
        from repro.signature.extract import SignatureExtractor

        clip = _cut_clip()
        features = SignatureExtractor.for_clip(clip).extract_clip(clip)
        result = CameraTrackingDetector().detect_from_features(features, "cuts")
        assert result.boundaries == [8, 16]

    def test_pan_does_not_split_shot(self):
        """Slow panning over a smooth world is one camera operation."""
        world = np.zeros((200, 400, 3), dtype=np.float64)
        world[:, :, 0] = np.linspace(40, 200, 400)[None, :]
        world[:, :, 1] = 120.0
        world[:, :, 2] = np.linspace(200, 40, 400)[None, :]
        frames = np.stack(
            [
                world[:120, k * 3 : k * 3 + 160].astype(np.uint8)
                for k in range(12)
            ]
        )
        result = CameraTrackingDetector().detect(VideoClip("pan", frames))
        assert result.n_shots == 1

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=4))
    def test_property_n_boundaries_matches_planted_cuts(self, n_cuts):
        """Clips with k well-separated high-contrast cuts yield k boundaries."""
        seg = 6
        levels = [30, 90, 150, 210, 250]
        frames = np.concatenate(
            [
                np.full((seg, 60, 80, 3), levels[k], dtype=np.uint8)
                for k in range(n_cuts + 1)
            ]
        )
        result = CameraTrackingDetector().detect(VideoClip("k-cuts", frames))
        assert result.boundaries == [seg * (k + 1) for k in range(n_cuts)]


class TestValidateShotsCover:
    def test_rejects_gap(self):
        shots = [Shot(0, 0, 4), Shot(1, 5, 10)]
        with pytest.raises(ShotError):
            validate_shots_cover(shots, 10)

    def test_rejects_wrong_total(self):
        shots = [Shot(0, 0, 4)]
        with pytest.raises(ShotError):
            validate_shots_cover(shots, 10)

    def test_rejects_empty(self):
        with pytest.raises(ShotError):
            validate_shots_cover([], 5)
