"""Unit and concurrency tests for the tracing layer itself.

Covers the span/context mechanics (nesting, idempotent end, forced
settlement of stragglers), the bounded collector under an 8-thread
recording storm (no lost or torn records, memory stays bounded), and
the HTTP surface under concurrent load (distinct trace ids per
request, ``/debug/traces`` stays well-formed JSON).
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.obs import (
    MAX_TRACE_ID_LEN,
    NOOP_SPAN,
    TraceCollector,
    TraceContext,
    current_trace,
    iter_spans,
    span,
    tracing,
    unsettled_spans,
)
from repro.service.engine import ServiceEngine
from repro.service.server import create_server
from repro.testing.synth import synth_database

pytestmark = pytest.mark.obs


class TestTraceContext:
    def test_nested_spans_build_a_tree(self):
        ctx = TraceContext(trace_id="t-1", name="root")
        with tracing(ctx):
            with span("outer", flavor="a"):
                with span("inner"):
                    pass
            with span("sibling"):
                pass
        doc = ctx.finish()
        names = [(depth, node["name"]) for depth, node in iter_spans(doc)]
        assert names == [
            (0, "root"),
            (1, "outer"),
            (2, "inner"),
            (1, "sibling"),
        ]
        assert doc["trace_id"] == "t-1"
        assert doc["n_spans"] == 4
        assert unsettled_spans(doc) == []

    def test_span_outside_a_trace_is_the_noop(self):
        assert current_trace() is None
        with span("anything", key="value") as s:
            assert s is NOOP_SPAN
            s.annotate(more=1)  # must not raise

    def test_end_is_idempotent(self):
        ctx = TraceContext()
        s = ctx.begin("once")
        s.end()
        first = s.duration_ms
        s.end()
        assert s.duration_ms == first

    def test_finish_settles_stragglers(self):
        ctx = TraceContext()
        ctx.begin("left-open")
        doc = ctx.finish()
        assert unsettled_spans(doc) == ["left-open"]
        # finish() is idempotent: same doc again.
        assert ctx.finish() is doc

    def test_trace_id_is_sanitized(self):
        assert TraceContext(trace_id="  padded  ").trace_id == "padded"
        long = "x" * (MAX_TRACE_ID_LEN + 50)
        assert len(TraceContext(trace_id=long).trace_id) == MAX_TRACE_ID_LEN
        generated = TraceContext(trace_id="   ").trace_id
        assert generated  # blank ids fall back to a generated one

    def test_worker_thread_spans_nest_under_attach_parent(self):
        from repro.obs import attach

        ctx = TraceContext(name="root")
        with tracing(ctx):
            parent = ctx.begin("fan-out")

            def work():
                with attach(ctx, parent):
                    with span("child"):
                        pass

            t = threading.Thread(target=work)
            t.start()
            t.join()
            parent.end()
        doc = ctx.finish()
        tree = {node["name"]: depth for depth, node in iter_spans(doc)}
        assert tree["fan-out"] == 1
        assert tree["child"] == 2


def _make_doc(k: int) -> dict:
    ctx = TraceContext(trace_id=f"doc-{k}", name="request")
    with tracing(ctx):
        with span("stage", k=k):
            pass
    return ctx.finish()


class TestTraceCollector:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceCollector(capacity=0)
        with pytest.raises(ValueError):
            TraceCollector(slow_ms=-1.0)
        with pytest.raises(ValueError):
            TraceCollector(slow_capacity=0)

    def test_slow_ring_and_find(self):
        collector = TraceCollector(capacity=4, slow_ms=0.0, slow_capacity=2)
        docs = [_make_doc(k) for k in range(6)]
        slow_flags = [collector.record(d) for d in docs]
        assert all(slow_flags)  # threshold 0ms: everything is slow
        stats = collector.stats()
        assert stats["recorded"] == 6
        assert stats["retained"] == 4
        assert stats["evicted"] == 2
        assert stats["slow_seen"] == 6
        assert stats["slow_retained"] == 2
        assert collector.find("doc-5")["trace_id"] == "doc-5"
        assert collector.find("doc-0") is None  # evicted
        assert [d["trace_id"] for d in collector.slow_snapshot()] == [
            "doc-4",
            "doc-5",
        ]

    def test_concurrent_recording_loses_nothing_and_stays_bounded(self):
        """8 threads x 200 traces: every record counted, none torn."""
        collector = TraceCollector(capacity=64)
        n_threads, per_thread = 8, 200

        def pump(tid: int) -> None:
            for k in range(per_thread):
                ctx = TraceContext(trace_id=f"t{tid}-{k}", name="request")
                with tracing(ctx):
                    with span("stage", tid=tid, k=k):
                        pass
                collector.record(ctx.finish())

        threads = [
            threading.Thread(target=pump, args=(tid,)) for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        stats = collector.stats()
        assert stats["recorded"] == n_threads * per_thread
        assert stats["retained"] == 64  # bounded: ring capacity, not 1600
        assert stats["evicted"] == n_threads * per_thread - 64
        # No torn records: every retained doc is complete and settled.
        snapshot = collector.snapshot()
        assert len(snapshot) == 64
        for doc in snapshot:
            assert doc["trace_id"].startswith("t")
            assert doc["duration_ms"] >= 0.0
            assert doc["n_spans"] == sum(1 for _ in iter_spans(doc))
            assert unsettled_spans(doc) == []


@pytest.fixture(scope="module")
def traced_service():
    engine = ServiceEngine(
        synth_database(3, n_videos=2),
        n_workers=1,
        watchdog_interval=0,
        trace_capacity=256,
    )
    server = create_server(engine)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield engine, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    engine.shutdown()


def _get(url: str, headers: dict | None = None) -> tuple[int, dict]:
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


class TestHTTPTracing:
    def test_concurrent_requests_get_distinct_trace_ids(self, traced_service):
        engine, base = traced_service
        n_threads, per_thread = 8, 10
        echoed: list[list[str]] = [[] for _ in range(n_threads)]
        errors: list[Exception] = []

        def pump(tid: int) -> None:
            try:
                for k in range(per_thread):
                    trace_id = f"http-{tid}-{k}"
                    status, payload = _get(
                        f"{base}/query?var_ba={50 + tid}&var_oa={20 + k}&limit=3",
                        headers={"X-Trace-Id": trace_id},
                    )
                    assert status == 200
                    echoed[tid].append(payload["trace_id"])
                    # Interleave debug reads with the query load.
                    status, debug = _get(f"{base}/debug/traces")
                    assert status == 200
                    assert debug["enabled"] is True
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=pump, args=(tid,)) for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[0]

        # Every response echoed exactly the id its client sent.
        for tid in range(n_threads):
            assert echoed[tid] == [f"http-{tid}-{k}" for k in range(per_thread)]

        # The debug endpoint retains them, well-formed and settled.
        status, debug = _get(f"{base}/debug/traces")
        assert status == 200
        retained = {doc["trace_id"] for doc in debug["traces"]}
        assert len(debug["traces"]) == len(retained)  # no duplicates
        assert any(t.startswith("http-") for t in retained)
        for doc in debug["traces"]:
            assert doc["n_spans"] >= 1
            assert doc["root"]["name"] == "request"
            assert unsettled_spans(doc) == []

    def test_untraced_routes_and_unheadered_requests(self, traced_service):
        engine, base = traced_service
        before = engine.traces.stats()["recorded"]
        status, payload = _get(f"{base}/health")
        assert status == 200 and "trace_id" not in payload
        status, payload = _get(f"{base}/metrics")
        assert status == 200
        assert "tracing" in payload and "stages" in payload
        # Observability routes don't trace themselves.
        assert engine.traces.stats()["recorded"] == before
        # A query without the header is traced but not echoed.
        status, payload = _get(f"{base}/query?var_ba=80&var_oa=30&limit=2")
        assert status == 200 and "trace_id" not in payload
        assert engine.traces.stats()["recorded"] == before + 1
