"""Tests for bitmap text, title cards, and rolling credits."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sbd import CameraTrackingDetector, classify_shot_motion
from repro.sbd.motion import CameraMotion
from repro.synth.canvas import new_canvas
from repro.synth.shotgen import render_shot
from repro.synth.text import GLYPH_COLS, GLYPH_ROWS, draw_text, text_extent
from repro.synth.titles import rolling_credits_shot, title_card_shot
from repro.video.clip import VideoClip


class TestBitmapFont:
    def test_extent(self):
        rows, cols = text_extent("ABC", scale=1)
        assert rows == GLYPH_ROWS
        assert cols == 3 * (GLYPH_COLS + 1) - 1

    def test_extent_scales(self):
        rows1, cols1 = text_extent("HI", scale=1)
        rows3, cols3 = text_extent("HI", scale=3)
        assert rows3 == 3 * rows1 and cols3 == 3 * cols1

    def test_draw_marks_pixels(self):
        canvas = new_canvas(20, 40)
        draw_text(canvas, "A", 2, 2, (255.0,) * 3)
        assert (canvas > 0).any()
        # 'A' has a hollow row-0 center-left pixel and solid crossbar.
        assert canvas[5, 2, 0] == 255.0  # crossbar row (glyph row 3)

    def test_unknown_characters_become_spaces(self):
        canvas = new_canvas(20, 40)
        draw_text(canvas, "@#%", 2, 2, (255.0,) * 3)
        assert not (canvas > 0).any()

    def test_lowercase_uppercased(self):
        a = new_canvas(20, 40)
        b = new_canvas(20, 40)
        draw_text(a, "abc", 2, 2, (9.0,) * 3)
        draw_text(b, "ABC", 2, 2, (9.0,) * 3)
        assert np.array_equal(a, b)

    def test_clipping_at_edges(self):
        canvas = new_canvas(10, 10)
        draw_text(canvas, "WWW", -3, -3, (9.0,) * 3, scale=2)  # mostly off-canvas
        assert canvas.shape == (10, 10, 3)  # no crash, no resize

    def test_rejects_bad_scale(self):
        with pytest.raises(WorkloadError):
            text_extent("A", scale=0)
        with pytest.raises(WorkloadError):
            draw_text(new_canvas(5, 5), "A", 0, 0, (1.0,) * 3, scale=0)


class TestTitleCard:
    def test_renders_text_content(self):
        frames = render_shot(title_card_shot("THE BIG|PICTURE"), 120, 160)
        bright = (frames[0] > 128).sum()
        assert bright > 500          # text pixels present
        assert bright < frames[0].size // 4  # mostly background

    def test_static_single_shot(self):
        frames = render_shot(title_card_shot("FIN"), 120, 160)
        result = CameraTrackingDetector().detect(VideoClip("t", frames))
        assert result.n_shots == 1

    def test_cut_from_card_to_content_detected(self):
        card = render_shot(title_card_shot("ACT ONE"), 120, 160)
        content = np.full((9, 120, 160, 3), 150, dtype=np.uint8)
        clip = VideoClip("movie", np.concatenate([card, content]))
        result = CameraTrackingDetector().detect(clip)
        assert result.boundaries == [len(card)]

    def test_rejects_empty_text(self):
        with pytest.raises(WorkloadError):
            title_card_shot("  |  ")


class TestRollingCredits:
    @pytest.fixture(scope="class")
    def credits_detection(self):
        spec = rolling_credits_shot(
            [f"CREW MEMBER {k}" for k in range(20)], n_frames=24
        )
        frames = render_shot(spec, 120, 160)
        return CameraTrackingDetector().detect(VideoClip("credits", frames))

    def test_roll_is_one_shot(self, credits_detection):
        """The steady scroll must not fragment into false shots."""
        assert credits_detection.n_shots == 1

    def test_roll_classified_as_tilt(self, credits_detection):
        estimate = classify_shot_motion(
            credits_detection, credits_detection.shots[0]
        )
        assert estimate.motion is CameraMotion.TILT

    def test_content_actually_scrolls(self):
        spec = rolling_credits_shot(["ONLY LINE HERE"] * 20, n_frames=10)
        frames = render_shot(spec, 120, 160)
        assert not np.array_equal(frames[0], frames[-1])

    def test_rejects_empty_lines(self):
        with pytest.raises(WorkloadError):
            rolling_credits_shot([])

    def test_rejects_bad_speed(self):
        with pytest.raises(WorkloadError):
            rolling_credits_shot(["X"], scroll_speed=0.0)
