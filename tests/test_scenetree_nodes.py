"""Tests for SceneNode/SceneTree structure and invariants."""

import pytest

from repro.errors import SceneTreeError
from repro.scenetree.nodes import SceneNode, SceneTree


def _leaf(node_id, shot):
    return SceneNode(node_id=node_id, shot_index=shot, level=0, representative_frame=0)


def _small_tree():
    """root(level 2) -> [scene(level 1) -> [leaf0, leaf1], leaf2]."""
    leaves = [_leaf(0, 0), _leaf(1, 1), _leaf(2, 2)]
    scene = SceneNode(node_id=3, shot_index=0, level=1, representative_frame=0)
    root = SceneNode(node_id=4, shot_index=0, level=2, representative_frame=0)
    leaves[0].attach_to(scene)
    leaves[1].attach_to(scene)
    scene.attach_to(root)
    leaves[2].attach_to(root)
    return SceneTree(root=root, leaves=leaves, clip_name="t"), leaves, scene, root


class TestSceneNode:
    def test_labels(self):
        assert _leaf(0, 0).label == "SN_1^0"
        empty = SceneNode(node_id=7)
        assert empty.label == "EN7"
        assert not empty.is_named

    def test_attach_and_ancestors(self):
        _, leaves, scene, root = _small_tree()
        assert [n.label for n in leaves[0].ancestors()] == [scene.label, root.label]
        assert leaves[0].oldest_ancestor() is root

    def test_attach_twice_rejected(self):
        _, leaves, scene, _ = _small_tree()
        with pytest.raises(SceneTreeError):
            leaves[0].attach_to(scene)

    def test_attach_to_self_rejected(self):
        node = _leaf(0, 0)
        with pytest.raises(SceneTreeError):
            node.attach_to(node)

    def test_subtree_iteration_preorder(self):
        _, _, scene, root = _small_tree()
        labels = [n.label for n in root.iter_subtree()]
        assert labels[0] == root.label
        assert labels[1] == scene.label

    def test_leaf_descendants_temporal(self):
        _, leaves, _, root = _small_tree()
        assert root.leaf_descendants() == leaves


class TestSceneTree:
    def test_queries(self):
        tree, leaves, scene, root = _small_tree()
        assert tree.n_shots == 3
        assert tree.height == 2
        assert tree.node_for_shot(1) is leaves[1]
        assert tree.find("SN_1^1") is scene
        assert len(tree.level_nodes(0)) == 3

    def test_node_for_shot_out_of_range(self):
        tree, *_ = _small_tree()
        with pytest.raises(SceneTreeError):
            tree.node_for_shot(5)

    def test_find_unknown_label(self):
        tree, *_ = _small_tree()
        with pytest.raises(SceneTreeError):
            tree.find("SN_9^9")

    def test_largest_scene_with_representative(self):
        tree, leaves, scene, root = _small_tree()
        # All nodes carry rep frame 0; the largest is the root.
        assert tree.largest_scene_with_representative(0) is root
        assert tree.largest_scene_with_representative(42) is None

    def test_validate_passes_on_good_tree(self):
        tree, *_ = _small_tree()
        tree.validate()

    def test_validate_rejects_unnamed(self):
        leaves = [_leaf(0, 0)]
        root = SceneNode(node_id=1)  # never named
        leaves[0].attach_to(root)
        tree = SceneTree.__new__(SceneTree)
        tree.root = root
        tree.leaves = leaves
        tree.clip_name = "bad"
        with pytest.raises(SceneTreeError):
            tree.validate()

    def test_validate_rejects_level_inversion(self):
        leaf = _leaf(0, 0)
        root = SceneNode(node_id=1, shot_index=0, level=0, representative_frame=0)
        leaf.attach_to(root)
        tree = SceneTree.__new__(SceneTree)
        tree.root = root
        tree.leaves = [leaf]
        tree.clip_name = "bad"
        with pytest.raises(SceneTreeError):
            tree.validate()

    def test_root_with_parent_rejected(self):
        _, leaves, scene, root = _small_tree()
        with pytest.raises(SceneTreeError):
            SceneTree(root=scene, leaves=leaves, clip_name="bad")
