"""Tests for the frame-skipping detector (repro.sbd.fast)."""

import numpy as np
import pytest

from repro.errors import ShotError
from repro.eval.sbd_metrics import score_boundaries
from repro.sbd.detector import CameraTrackingDetector
from repro.sbd.fast import SkippingCameraTrackingDetector
from repro.video.clip import VideoClip


def _clip(levels, seg_len=8, rows=60, cols=80):
    frames = np.concatenate(
        [np.full((seg_len, rows, cols, 3), v, dtype=np.uint8) for v in levels]
    )
    return VideoClip("fast", frames)


class TestSkippingDetector:
    def test_step_one_equals_exact(self, figure5):
        clip, _ = figure5
        exact = CameraTrackingDetector().detect(clip)
        fast = SkippingCameraTrackingDetector(step=1).detect(clip)
        assert fast.boundaries == exact.boundaries

    def test_finds_clean_cuts_at_any_step(self):
        clip = _clip([40, 140, 240, 90])
        for step in (2, 3, 4, 6):
            result = SkippingCameraTrackingDetector(step=step).detect(clip)
            assert result.boundaries == [8, 16, 24], step

    def test_extraction_savings_on_quiet_material(self):
        """A single long shot needs only every step-th frame."""
        frames = np.full((64, 60, 80, 3), 128, dtype=np.uint8)
        clip = VideoClip("quiet", frames)
        result = SkippingCameraTrackingDetector(step=8).detect(clip)
        assert result.n_shots == 1
        assert result.extraction_fraction < 0.25
        assert result.windows_refined == 0

    def test_refinement_localizes_exactly(self):
        """A cut mid-window is placed on the exact frame."""
        clip = _clip([40, 200], seg_len=13)
        result = SkippingCameraTrackingDetector(step=5).detect(clip)
        assert result.boundaries == [13]
        assert result.windows_refined >= 1

    def test_shots_tile_clip(self):
        clip = _clip([40, 140, 240])
        result = SkippingCameraTrackingDetector(step=4).detect(clip)
        assert result.shots[0].start == 0
        assert result.shots[-1].stop == len(clip)
        assert sum(len(s) for s in result.shots) == len(clip)

    def test_short_shot_can_be_stepped_over(self):
        """The documented trade-off: a shot shorter than the step whose
        content returns to the surrounding shot is invisible."""
        frames = np.full((30, 60, 80, 3), 70, dtype=np.uint8)
        frames[12:15] = 250  # a 3-frame insert
        clip = VideoClip("insert", frames)
        exact = CameraTrackingDetector().detect(clip)
        fast = SkippingCameraTrackingDetector(step=16).detect(clip)
        assert len(exact.boundaries) >= len(fast.boundaries)

    def test_accuracy_close_to_exact_on_genre_clip(self):
        from repro.synth.genres import GENRE_MODELS, generate_genre_clip

        clip, truth = generate_genre_clip(
            GENRE_MODELS["news"], "n", n_shots=15, seed=4
        )
        exact_score = score_boundaries(
            truth.boundaries,
            CameraTrackingDetector().detect(clip).boundaries,
            1,
        )
        fast_score = score_boundaries(
            truth.boundaries,
            SkippingCameraTrackingDetector(step=4).detect(clip).boundaries,
            1,
        )
        assert fast_score.recall >= exact_score.recall - 0.15
        assert fast_score.precision >= exact_score.precision - 0.15

    def test_rejects_bad_step(self):
        with pytest.raises(ShotError):
            SkippingCameraTrackingDetector(step=0)

    def test_single_frame_clip(self):
        clip = VideoClip("one", np.zeros((1, 60, 80, 3), dtype=np.uint8))
        result = SkippingCameraTrackingDetector(step=4).detect(clip)
        assert result.n_shots == 1
