"""Tests for the threshold-sensitivity experiment driver."""

import pytest

from repro.experiments import sensitivity
from repro.workloads.table5 import TABLE5_CLIPS


@pytest.fixture(scope="module")
def result():
    # Two clips at small scale keep the sweep quick; the full six-clip
    # run is the bench's job.
    return sensitivity.run(scale=0.08, specs=TABLE5_CLIPS[9:11])


class TestSensitivityExperiment:
    def test_sweeps_cover_grids(self, result):
        assert len(result.histogram_sweep) == 20
        assert len(result.ecr_sweep) == 9

    def test_scores_bounded(self, result):
        for point in result.histogram_sweep + result.ecr_sweep:
            assert 0.0 <= point.f1 <= 1.0

    def test_histogram_spread_is_wide(self, result):
        low, high = result.spread(result.histogram_sweep)
        assert high - low >= 0.1

    def test_camera_tracking_competitive(self, result):
        """The fixed-configuration detector is at least close to the
        best swept baseline setting (usually above it)."""
        _, h_high = result.spread(result.histogram_sweep)
        assert result.camera_f1 >= h_high - 0.15

    def test_parameters_recorded(self, result):
        point = result.histogram_sweep[0]
        assert len(point.parameters) == 3
        assert point.parameters[1] < point.parameters[0]  # low < cut
