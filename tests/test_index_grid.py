"""Tests for the quantized-grid index (repro.index.grid)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import QueryConfig
from repro.errors import IndexError_
from repro.features.vector import FeatureVector
from repro.index.grid import QuantizedGridIndex
from repro.index.query import VarianceQuery, search
from repro.index.table import IndexEntry, IndexTable


def _entry(number=1, var_ba=4.0, var_oa=1.0):
    return IndexEntry(
        video_id="v",
        shot_number=number,
        start_frame=1,
        end_frame=10,
        features=FeatureVector(var_ba=var_ba, var_oa=var_oa),
    )


class TestGridStructure:
    def test_insert_and_len(self):
        grid = QuantizedGridIndex([_entry(k) for k in range(1, 6)])
        assert len(grid) == 5
        assert grid.n_cells >= 1

    def test_iteration_covers_all(self):
        entries = [_entry(k, var_ba=float(k * k)) for k in range(1, 6)]
        grid = QuantizedGridIndex(entries)
        assert {e.shot_number for e in grid} == {1, 2, 3, 4, 5}

    def test_rejects_bad_cell_size(self):
        with pytest.raises(IndexError_):
            QuantizedGridIndex(alpha=0.0)


class TestGridQueries:
    def test_candidates_superset_of_matches(self):
        entries = [_entry(k, var_ba=float(k)) for k in range(1, 30)]
        grid = QuantizedGridIndex(entries)
        query = VarianceQuery(var_ba=9.0, var_oa=1.0)
        candidate_ids = {e.shot_number for e in grid.candidates(query)}
        match_ids = {e.shot_number for e in grid.search(query)}
        assert match_ids <= candidate_ids

    def test_exclude_and_limit(self):
        entries = [_entry(k) for k in range(1, 8)]
        grid = QuantizedGridIndex(entries)
        query = VarianceQuery(var_ba=4.0, var_oa=1.0)
        results = grid.search(query, exclude_shot=("v", 1), limit=3)
        assert len(results) == 3
        assert all(e.shot_number != 1 for e in results)

    def test_wider_query_than_cells(self):
        """Querying with alpha/beta larger than the grid cells widens
        the neighborhood instead of missing matches."""
        entries = [_entry(k, var_ba=float(k)) for k in range(1, 40)]
        grid = QuantizedGridIndex(entries, alpha=0.5, beta=0.5)
        query = VarianceQuery(var_ba=16.0, var_oa=4.0)
        config = QueryConfig(alpha=2.0, beta=2.0)
        table = IndexTable(entries)
        expected = [(e.video_id, e.shot_number) for e in search(table, query, config)]
        measured = [(e.video_id, e.shot_number) for e in grid.search(query, config)]
        assert measured == expected

    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=400),
                st.floats(min_value=0, max_value=400),
            ),
            min_size=1,
            max_size=40,
        ),
        st.floats(min_value=0, max_value=400),
        st.floats(min_value=0, max_value=400),
    )
    def test_property_grid_equals_scan(self, vars_, q_ba, q_oa):
        """The grid answers exactly like the table scan (the load-
        bearing correctness property of the 3x3 neighborhood bound)."""
        entries = [
            _entry(number=k + 1, var_ba=ba, var_oa=oa)
            for k, (ba, oa) in enumerate(vars_)
        ]
        grid = QuantizedGridIndex(entries)
        table = IndexTable(entries)
        query = VarianceQuery(var_ba=q_ba, var_oa=q_oa)
        via_scan = [(e.video_id, e.shot_number) for e in search(table, query)]
        via_grid = [(e.video_id, e.shot_number) for e in grid.search(query)]
        assert via_scan == via_grid
