"""Tests for repro.geometry.sizeset (Eq. 1 and Table 1)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DimensionError
from repro.geometry.sizeset import (
    SIZE_SET_PREFIX,
    is_size_set_member,
    nearest_size,
    size_index_for_estimate,
    size_set,
    size_set_element,
)


class TestSizeSetElement:
    def test_prefix_matches_paper(self):
        assert tuple(size_set_element(j) for j in range(1, 9)) == SIZE_SET_PREFIX

    def test_equation_one_literally(self):
        # s_j = 1 + sum_{i=2}^{j} 2^i
        for j in range(1, 12):
            expected = 1 + sum(2 ** i for i in range(2, j + 1))
            assert size_set_element(j) == expected

    def test_rejects_nonpositive_index(self):
        with pytest.raises(DimensionError):
            size_set_element(0)


class TestSizeSet:
    def test_generates_up_to_limit(self):
        assert list(size_set(61)) == [1, 5, 13, 29, 61]

    def test_limit_below_one_is_empty(self):
        assert list(size_set(0)) == []


class TestMembership:
    @pytest.mark.parametrize("n", [1, 5, 13, 29, 61, 125, 253])
    def test_members(self, n):
        assert is_size_set_member(n)

    @pytest.mark.parametrize("n", [0, 2, 3, 4, 6, 12, 14, 28, 30, 124, 126])
    def test_non_members(self, n):
        assert not is_size_set_member(n)

    @given(st.integers(min_value=1, max_value=10))
    def test_every_element_is_member(self, j):
        assert is_size_set_member(size_set_element(j))


class TestNearest:
    @pytest.mark.parametrize(
        "estimate,expected",
        [(1, 1), (2, 1), (3, 5), (8, 5), (9, 13), (16, 13), (20, 13),
         (21, 29), (44, 29), (45, 61), (92, 61), (93, 125)],
    )
    def test_table1_rows(self, estimate, expected):
        """The exact boundaries of the paper's Table 1."""
        assert nearest_size(estimate) == expected

    def test_paper_example_c160(self):
        """Sec. 2.2's worked example: c=160 -> w'=16 -> j=3 -> w=13."""
        assert size_index_for_estimate(16) == 3
        assert nearest_size(16) == 13

    def test_rejects_nonpositive(self):
        with pytest.raises(DimensionError):
            nearest_size(0)

    @given(st.integers(min_value=1, max_value=100_000))
    def test_nearest_is_truly_nearest_with_upward_ties(self, estimate):
        """Property: the closed form equals brute-force nearest search
        (ties resolve to the larger member, per Table 1)."""
        snapped = nearest_size(estimate)
        candidates = list(size_set(4 * estimate + 16))
        best = min(candidates, key=lambda s: (abs(s - estimate), -s))
        assert snapped == best

    @given(st.integers(min_value=1, max_value=100_000))
    def test_result_always_member(self, estimate):
        assert is_size_set_member(nearest_size(estimate))

    @given(st.integers(min_value=1, max_value=20))
    def test_members_snap_to_themselves(self, j):
        s = size_set_element(j)
        assert nearest_size(s) == s
