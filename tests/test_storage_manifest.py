"""Checksummed-manifest persistence: commit protocol, verification,
recovery, legacy migration, and the ``repro fsck`` CLI."""

import json

import pytest

from repro.cli import main as cli_main
from repro.errors import StorageError, StorageIntegrityError
from repro.testing import FaultyFS, synth_database
from repro.vdbms.database import VideoDatabase
from repro.vdbms.manifest import MANIFEST_VERSION, TREE_PREFIX, digest_bytes
from repro.vdbms.storage import DatabaseStorage


def _saved_db(tmp_path, seed=3, n_videos=2):
    db = synth_database(seed, n_videos=n_videos)
    root = tmp_path / "db"
    db.save(root)
    return db, root, DatabaseStorage(root)


def _tracked_path(storage, logical):
    manifest = storage.read_manifest()
    return storage.root / manifest.files[logical].path


class TestManifestCommit:
    def test_save_writes_versioned_manifest(self, tmp_path):
        db, root, storage = _saved_db(tmp_path)
        manifest = storage.read_manifest()
        assert manifest is not None
        assert manifest.generation == 1
        payload = json.loads(storage.manifest_path.read_text())
        assert payload["version"] == MANIFEST_VERSION
        expected = {"catalog", "index"} | {
            TREE_PREFIX + vid for vid in db.catalog.ids()
        }
        assert set(manifest.files) == expected
        for record in manifest.files.values():
            data = (root / record.path).read_bytes()
            assert len(data) == record.n_bytes
            assert digest_bytes(data) == record.blake2s

    def test_noop_save_keeps_generation(self, tmp_path):
        db, root, storage = _saved_db(tmp_path)
        before = storage.read_manifest()
        db.save(root)
        after = storage.read_manifest()
        assert after.generation == before.generation
        assert after.files == before.files

    def test_changed_save_bumps_generation_and_collects_garbage(self, tmp_path):
        db, root, storage = _saved_db(tmp_path)
        old_catalog = _tracked_path(storage, "catalog")
        victim = db.catalog.ids()[0]
        db.remove(victim)
        db.save(root)
        manifest = storage.read_manifest()
        assert manifest.generation == 2
        assert TREE_PREFIX + victim not in manifest.files
        # The superseded generation's files are gone after the commit.
        assert not old_catalog.exists()
        assert _tracked_path(storage, "catalog").exists()

    def test_failed_publish_leaves_old_state_and_no_staging_litter(self, tmp_path):
        db, root, storage = _saved_db(tmp_path)
        before = storage.read_manifest()
        victim = db.catalog.ids()[0]
        db.remove(victim)
        broken = DatabaseStorage(
            root, fs=FaultyFS(mode="error", ops=("write",), fail_times=10)
        )
        with pytest.raises(StorageError):
            db.save(root, fs=broken.fs)
        # Old manifest still in force; the failed save cleaned up after
        # itself (regression: unique staging names + unlink-on-failure).
        assert storage.read_manifest().files == before.files
        assert list(storage.staging_dir.iterdir()) == []
        loaded = VideoDatabase.load(root)
        assert victim in loaded.catalog

    def test_staging_names_are_unique(self, tmp_path):
        storage = DatabaseStorage(tmp_path)
        names = {storage._staging_path("x.json").name for _ in range(64)}
        assert len(names) == 64
        import os

        assert all(name.startswith(f"{os.getpid()}-") for name in names)


class TestVerifiedLoads:
    def test_bitflip_in_tree_detected(self, tmp_path):
        db, root, storage = _saved_db(tmp_path)
        vid = db.catalog.ids()[0]
        path = _tracked_path(storage, TREE_PREFIX + vid)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(StorageIntegrityError):
            VideoDatabase.load(root)

    def test_truncated_index_detected(self, tmp_path):
        db, root, storage = _saved_db(tmp_path)
        path = _tracked_path(storage, "index")
        path.write_bytes(path.read_bytes()[:-7])
        with pytest.raises(StorageIntegrityError):
            VideoDatabase.load(root)

    def test_missing_tracked_file_raises_storage_error(self, tmp_path):
        db, root, storage = _saved_db(tmp_path)
        _tracked_path(storage, "catalog").unlink()
        with pytest.raises(StorageError):
            VideoDatabase.load(root)

    def test_integrity_error_is_a_storage_error(self):
        assert issubclass(StorageIntegrityError, StorageError)

    def test_recover_quarantines_bad_video_keeps_rest(self, tmp_path):
        db, root, storage = _saved_db(tmp_path, n_videos=3)
        victim = db.catalog.ids()[1]
        path = _tracked_path(storage, TREE_PREFIX + victim)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(StorageIntegrityError):
            VideoDatabase.load(root)
        loaded = VideoDatabase.load(root, recover=True)
        assert loaded.quarantined == [victim]
        assert victim not in loaded.catalog
        assert all(e.video_id != victim for e in loaded.index.entries)
        survivors = [v for v in db.catalog.ids() if v != victim]
        assert loaded.catalog.ids() == survivors
        for vid in survivors:
            loaded.scene_tree(vid).validate()

    def test_corrupt_catalog_raises_even_with_recover(self, tmp_path):
        db, root, storage = _saved_db(tmp_path)
        path = _tracked_path(storage, "catalog")
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(StorageIntegrityError):
            VideoDatabase.load(root, recover=True)

    def test_corrupt_manifest_raises(self, tmp_path):
        db, root, storage = _saved_db(tmp_path)
        storage.manifest_path.write_text("{torn", encoding="utf-8")
        with pytest.raises(StorageError):
            VideoDatabase.load(root)


class TestLegacyLayout:
    def _write_legacy(self, tmp_path, seed=5):
        """Materialize the pre-manifest layout by hand."""
        db = synth_database(seed, n_videos=2)
        root = tmp_path / "legacy"
        storage = DatabaseStorage(root)
        storage.initialize()
        from repro.scenetree.serialize import scene_tree_to_dict

        storage.catalog_path.write_text(json.dumps(db.catalog.to_dict()))
        storage.index_path.write_text(json.dumps(db.index.to_dict()))
        for vid, tree in db.trees.items():
            storage.tree_path(vid).write_text(
                json.dumps(scene_tree_to_dict(tree))
            )
        return db, root, storage

    def test_legacy_database_still_loads(self, tmp_path):
        db, root, storage = self._write_legacy(tmp_path)
        assert storage.read_manifest() is None
        loaded = VideoDatabase.load(root)
        assert loaded.catalog.ids() == db.catalog.ids()
        assert len(loaded.index) == len(db.index)

    def test_first_save_migrates_to_manifest(self, tmp_path):
        db, root, storage = self._write_legacy(tmp_path)
        loaded = VideoDatabase.load(root)
        loaded.save(root)
        manifest = storage.read_manifest()
        assert manifest is not None and manifest.generation == 1
        # The bare legacy files are garbage once the manifest commits.
        assert not storage.catalog_path.exists()
        assert not storage.index_path.exists()
        again = VideoDatabase.load(root)
        assert again.catalog.ids() == db.catalog.ids()

    def test_legacy_recover_drops_corrupt_tree(self, tmp_path):
        db, root, storage = self._write_legacy(tmp_path)
        victim = db.catalog.ids()[0]
        storage.tree_path(victim).write_text("{broken", encoding="utf-8")
        with pytest.raises(StorageError):
            VideoDatabase.load(root)
        loaded = VideoDatabase.load(root, recover=True)
        assert loaded.quarantined == [victim]
        assert victim not in loaded.catalog


class TestFsck:
    def test_clean_database(self, tmp_path):
        db, root, storage = _saved_db(tmp_path)
        report = storage.fsck()
        assert report.mode == "manifest"
        assert report.clean
        assert report.problems() == []
        assert report.untracked == []

    def test_classifications(self, tmp_path):
        db, root, storage = _saved_db(tmp_path, n_videos=3)
        ids = db.catalog.ids()
        manifest = storage.read_manifest()
        # One of each corruption flavor.
        flip = root / manifest.files[TREE_PREFIX + ids[0]].path
        data = bytearray(flip.read_bytes())
        data[len(data) // 2] ^= 0xFF
        flip.write_bytes(bytes(data))
        trunc = root / manifest.files[TREE_PREFIX + ids[1]].path
        trunc.write_bytes(trunc.read_bytes()[:-5])
        gone = root / manifest.files[TREE_PREFIX + ids[2]].path
        gone.unlink()
        (root / "trees" / "stray.json").write_text("{}")
        by_logical = {c.logical: c for c in storage.fsck().checks}
        assert by_logical[TREE_PREFIX + ids[0]].status == "checksum-mismatch"
        assert by_logical[TREE_PREFIX + ids[1]].status == "size-mismatch"
        assert by_logical[TREE_PREFIX + ids[2]].status == "missing"
        assert by_logical["catalog"].status == "ok"
        assert storage.fsck().untracked == ["trees/stray.json"]

    def test_untracked_litter_is_not_a_problem(self, tmp_path):
        db, root, storage = _saved_db(tmp_path)
        (storage.staging_dir / "999-000001-catalog.json").write_text("{}")
        report = storage.fsck()
        assert report.clean
        assert report.untracked == ["staging/999-000001-catalog.json"]

    def test_empty_directory(self, tmp_path):
        report = DatabaseStorage(tmp_path / "nothing").fsck()
        assert report.mode == "empty"
        assert not report.clean


class TestFsckCli:
    def test_clean_exit_zero(self, tmp_path, capsys):
        db, root, storage = _saved_db(tmp_path)
        assert cli_main(["fsck", str(root)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_corruption_exit_one(self, tmp_path, capsys):
        db, root, storage = _saved_db(tmp_path)
        vid = db.catalog.ids()[0]
        path = _tracked_path(storage, TREE_PREFIX + vid)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        assert cli_main(["fsck", str(root)]) == 1
        out = capsys.readouterr().out
        assert "checksum-mismatch" in out

    def test_json_report(self, tmp_path, capsys):
        db, root, storage = _saved_db(tmp_path)
        assert cli_main(["fsck", str(root), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["mode"] == "manifest"

    def test_repair_quarantines_and_ends_clean(self, tmp_path, capsys):
        db, root, storage = _saved_db(tmp_path, n_videos=3)
        victim = db.catalog.ids()[0]
        path = _tracked_path(storage, TREE_PREFIX + victim)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        assert cli_main(["fsck", str(root), "--repair"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        # The bad bytes were preserved for forensics, not deleted.
        assert any(storage.quarantine_dir.iterdir())
        loaded = VideoDatabase.load(root)
        assert victim not in loaded.catalog
        assert len(loaded.catalog.ids()) == 2
        assert cli_main(["fsck", str(root)]) == 0

    def test_empty_directory_exit_one(self, tmp_path, capsys):
        assert cli_main(["fsck", str(tmp_path / "nope")]) == 1
