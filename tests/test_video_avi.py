"""Tests for the AVI (RIFF) container (repro.video.avi)."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import VideoFormatError
from repro.video.avi import read_avi, write_avi
from repro.video.clip import VideoClip


def _clip(n=4, rows=12, cols=16, fps=30.0):
    rng = np.random.default_rng(n + rows + cols)
    frames = rng.integers(0, 255, size=(n, rows, cols, 3)).astype(np.uint8)
    return VideoClip("avi-test", frames, fps=fps)


class TestAviRoundTrip:
    def test_frames_exact(self, tmp_path):
        clip = _clip()
        path = write_avi(clip, tmp_path / "c.avi")
        loaded = read_avi(path)
        assert np.array_equal(loaded.frames, clip.frames)

    def test_fps_preserved_to_microsecond(self, tmp_path):
        clip = _clip(fps=30.0)
        loaded = read_avi(write_avi(clip, tmp_path / "c.avi"))
        assert loaded.fps == pytest.approx(30.0, abs=0.01)

    def test_odd_width_row_padding(self, tmp_path):
        """Widths not divisible by 4 exercise the DIB padding rules."""
        clip = _clip(rows=9, cols=13)
        loaded = read_avi(write_avi(clip, tmp_path / "odd.avi"))
        assert np.array_equal(loaded.frames, clip.frames)

    def test_name_from_filename(self, tmp_path):
        clip = _clip()
        loaded = read_avi(write_avi(clip, tmp_path / "my clip.avi"))
        assert loaded.name == "my clip"

    def test_riff_structure(self, tmp_path):
        """The file leads with RIFF/AVI magic and a correct size field."""
        path = write_avi(_clip(), tmp_path / "c.avi")
        data = path.read_bytes()
        assert data[:4] == b"RIFF"
        assert data[8:12] == b"AVI "
        (riff_size,) = struct.unpack_from("<I", data, 4)
        assert riff_size == len(data) - 8
        assert b"movi" in data and b"idx1" in data and b"00db" in data

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=4, max_value=24),
        st.integers(min_value=4, max_value=24),
    )
    def test_property_round_trip_any_geometry(self, n, rows, cols):
        import tempfile
        from pathlib import Path

        rng = np.random.default_rng(n * 1000 + rows * 31 + cols)
        frames = rng.integers(0, 255, size=(n, rows, cols, 3)).astype(np.uint8)
        clip = VideoClip("p", frames, fps=30.0)
        with tempfile.TemporaryDirectory() as tmp:
            loaded = read_avi(write_avi(clip, Path(tmp) / "p.avi"))
        assert np.array_equal(loaded.frames, frames)


class TestAviErrors:
    def test_not_riff(self, tmp_path):
        path = tmp_path / "x.avi"
        path.write_bytes(b"JUNKJUNKJUNKJUNK")
        with pytest.raises(VideoFormatError):
            read_avi(path)

    def test_riff_but_not_avi(self, tmp_path):
        path = tmp_path / "x.avi"
        path.write_bytes(b"RIFF" + struct.pack("<I", 4) + b"WAVE")
        with pytest.raises(VideoFormatError):
            read_avi(path)

    def test_no_frames(self, tmp_path):
        path = tmp_path / "x.avi"
        path.write_bytes(b"RIFF" + struct.pack("<I", 4) + b"AVI ")
        with pytest.raises(VideoFormatError):
            read_avi(path)

    def test_unsupported_bit_depth(self, tmp_path):
        clip = _clip()
        path = write_avi(clip, tmp_path / "c.avi")
        data = bytearray(path.read_bytes())
        pos = data.find(b"strf")
        # biBitCount lives 22 bytes into the BITMAPINFOHEADER payload.
        struct.pack_into("<H", data, pos + 8 + 14, 8)
        path.write_bytes(bytes(data))
        with pytest.raises(VideoFormatError):
            read_avi(path)


class TestInteropWithPipeline:
    def test_avi_clip_flows_through_detection(self, tmp_path):
        frames = np.zeros((12, 60, 80, 3), dtype=np.uint8)
        frames[:6] = 60
        frames[6:] = 200
        clip = VideoClip("cutavi", frames, fps=30.0)
        loaded = read_avi(write_avi(clip, tmp_path / "cut.avi"))
        from repro.sbd import CameraTrackingDetector
        from repro.video.sampling import resample_fps

        decimated = resample_fps(loaded, 3.0)
        assert len(decimated) == 1 or len(decimated) >= 1
        result = CameraTrackingDetector().detect(loaded)
        assert result.boundaries == [6]
