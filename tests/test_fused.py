"""Tests for the fused extraction fast path (repro.pyramid.fused).

The contract under test is *exact* equivalence: the fused single-GEMM
path and the multi-pass reference path must produce byte-identical
``ClipFeatures`` after uint8 quantization, on every geometry, for any
chunking/worker configuration.
"""

import numpy as np
import pytest

from repro.caching import KeyedLRU
from repro.config import ExtractionConfig, PipelineConfig, RegionConfig
from repro.errors import DimensionError, QueryError
from repro.pyramid.fused import (
    collapse_vector,
    fold_resample,
    operator_cache_stats,
    reduction_matrix,
)
from repro.pyramid.reduce import reduce_line, reduction_schedule
from repro.sbd.detector import CameraTrackingDetector
from repro.signature.extract import SignatureExtractor
from repro.synth.genres import GENRE_MODELS, generate_genre_clip

GEOMETRIES = [(60, 80), (48, 64), (72, 96), (120, 160), (50, 50)]

FUSED = ExtractionConfig(use_fused=True, chunk_frames=None)
REFERENCE = ExtractionConfig(use_fused=False, chunk_frames=None)


def random_frames(rows, cols, n=6, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(n, rows, cols, 3), dtype=np.uint8)


def assert_features_identical(got, expected):
    np.testing.assert_array_equal(got.signatures_ba, expected.signatures_ba)
    np.testing.assert_array_equal(got.signs_ba, expected.signs_ba)
    np.testing.assert_array_equal(got.signs_oa, expected.signs_oa)
    assert got.geometry == expected.geometry


class TestOperatorBuildingBlocks:
    def test_reduction_matrix_matches_reduce_line(self):
        rng = np.random.default_rng(1)
        for n in (5, 13, 29, 61, 125):
            line = rng.uniform(0, 255, size=n)
            np.testing.assert_allclose(
                reduction_matrix(n) @ line, reduce_line(line), atol=1e-9
            )

    def test_reduction_matrix_rejects_bad_lengths(self):
        for n in (1, 4, 12):
            with pytest.raises(DimensionError):
                reduction_matrix(n)

    def test_collapse_vector_matches_full_chain(self):
        rng = np.random.default_rng(2)
        for n in (5, 13, 29, 61, 125, 253):
            line = rng.uniform(0, 255, size=n)
            reduced = line
            while reduced.shape[0] > 1:
                reduced = reduce_line(reduced)
            np.testing.assert_allclose(
                collapse_vector(n) @ line, reduced[0], rtol=1e-12
            )

    def test_collapse_vector_weights_sum_to_one(self):
        # Each REDUCE pass preserves total mass (taps sum to 1), so the
        # composed collapse is a weighted average.
        for n in (5, 13, 61):
            assert collapse_vector(n).sum() == pytest.approx(1.0)

    def test_fold_resample_equals_gather_then_collapse(self):
        rng = np.random.default_rng(3)
        raw = rng.uniform(0, 255, size=17)
        idx = np.minimum(np.arange(13) * 17 // 13, 16)
        weights = collapse_vector(13)
        folded = fold_resample(weights, idx, 17)
        np.testing.assert_allclose(folded @ raw, weights @ raw[idx], rtol=1e-12)

    def test_respects_reduction_schedule(self):
        # Sanity: the collapse composes exactly len(schedule) - 1 passes.
        assert reduction_schedule(29) == [29, 13, 5, 1]
        assert collapse_vector(29).shape == (29,)


class TestDenseOperators:
    @pytest.mark.parametrize("rows,cols", [(60, 80), (120, 160)])
    def test_dense_operators_reproduce_reference_floats(self, rows, cols):
        """The materialized matrices map raw region pixels to features."""
        extractor = SignatureExtractor(rows, cols)
        ops = extractor._operators()
        g = extractor.geometry
        frames = random_frames(rows, cols, n=3, seed=7)

        raw_tba = np.concatenate(
            extractor._batch_fba_strips(frames), axis=2
        ).astype(np.float64)
        flat_tba = raw_tba.reshape(len(frames), g.w_est * g.l_est, 3)
        sig_dense = np.einsum("op,npc->noc", ops.signature_operator(), flat_tba)
        sign_ba_dense = np.einsum("p,npc->nc", ops.sign_ba_operator(), flat_tba)

        resampled = extractor._batch_tba(frames)
        sig_ref = extractor._reduce_axis1_to_one(resampled)
        sign_ba_ref = extractor._reduce_axis1_to_one(sig_ref)
        np.testing.assert_allclose(sig_dense, sig_ref, atol=1e-9)
        np.testing.assert_allclose(sign_ba_dense, sign_ba_ref, atol=1e-9)

        raw_foa = extractor._batch_foa_raw(frames).astype(np.float64)
        flat_foa = raw_foa.reshape(len(frames), g.h_est * g.b_est, 3)
        sign_oa_dense = np.einsum("p,npc->nc", ops.sign_oa_operator(), flat_foa)
        foa_ref = extractor._reduce_axis1_to_one(extractor._batch_foa(frames))
        sign_oa_ref = extractor._reduce_axis1_to_one(foa_ref)
        np.testing.assert_allclose(sign_oa_dense, sign_oa_ref, atol=1e-9)


class TestFusedEquivalence:
    @pytest.mark.parametrize("rows,cols", GEOMETRIES)
    def test_byte_identical_on_random_frames(self, rows, cols):
        extractor = SignatureExtractor(rows, cols)
        frames = random_frames(rows, cols, n=8, seed=rows * 1000 + cols)
        fused = extractor.extract_frames(frames, extraction=FUSED)
        reference = extractor.extract_frames(frames, extraction=REFERENCE)
        assert_features_identical(fused, reference)

    def test_byte_identical_on_synthetic_clip(self):
        clip, _ = generate_genre_clip(
            GENRE_MODELS["drama"], "fused-eq", n_shots=4, seed=5
        )
        extractor = SignatureExtractor.for_clip(clip)
        fused = extractor.extract_clip(clip, extraction=FUSED)
        reference = extractor.extract_clip(clip, extraction=REFERENCE)
        assert_features_identical(fused, reference)

    def test_extract_frame_matches_batch_row(self):
        frames = random_frames(60, 80, n=4, seed=11)
        extractor = SignatureExtractor(60, 80)
        batch = extractor.extract_frames(frames)
        for k in range(len(frames)):
            single = extractor.extract_frame(frames[k])
            np.testing.assert_array_equal(single.signature_ba, batch.signatures_ba[k])
            np.testing.assert_array_equal(single.sign_ba, batch.signs_ba[k])
            np.testing.assert_array_equal(single.sign_oa, batch.signs_oa[k])

    def test_unsnapped_geometry_raises_at_extraction(self):
        # snap_to_size_set=False geometries have no REDUCE chain; the
        # fused path must fail the same way the reference path does.
        config = RegionConfig(snap_to_size_set=False)
        extractor = SignatureExtractor(60, 80, config=config)
        frames = random_frames(60, 80, n=2)
        with pytest.raises(DimensionError):
            extractor.extract_frames(frames, extraction=FUSED)
        with pytest.raises(DimensionError):
            extractor.extract_frames(frames, extraction=REFERENCE)


class TestChunkedExtraction:
    @pytest.mark.parametrize("chunk", [1, 7, 16, 50, 200])
    def test_chunked_equals_unchunked(self, chunk):
        frames = random_frames(60, 80, n=50, seed=23)
        extractor = SignatureExtractor(60, 80)
        whole = extractor.extract_frames(frames, extraction=FUSED)
        chunked = extractor.extract_frames(
            frames, extraction=ExtractionConfig(chunk_frames=chunk)
        )
        assert_features_identical(chunked, whole)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_chunks_equal_serial(self, workers):
        frames = random_frames(60, 80, n=64, seed=29)
        extractor = SignatureExtractor(60, 80)
        serial = extractor.extract_frames(
            frames, extraction=ExtractionConfig(chunk_frames=9, workers=1)
        )
        parallel = extractor.extract_frames(
            frames, extraction=ExtractionConfig(chunk_frames=9, workers=workers)
        )
        assert_features_identical(parallel, serial)

    def test_chunked_reference_path(self):
        frames = random_frames(48, 64, n=30, seed=31)
        extractor = SignatureExtractor(48, 64)
        whole = extractor.extract_frames(frames, extraction=REFERENCE)
        chunked = extractor.extract_frames(
            frames,
            extraction=ExtractionConfig(use_fused=False, chunk_frames=11, workers=2),
        )
        assert_features_identical(chunked, whole)


class TestDetectorEquivalence:
    def test_same_boundaries_fused_and_legacy(self):
        clip, _ = generate_genre_clip(
            GENRE_MODELS["sports"], "fused-detect", n_shots=6, seed=13
        )
        fused = CameraTrackingDetector(extraction=FUSED).detect(clip)
        legacy = CameraTrackingDetector(extraction=REFERENCE).detect(clip)
        assert fused.boundaries == legacy.boundaries
        assert [(s.start, s.stop) for s in fused.shots] == [
            (s.start, s.stop) for s in legacy.shots
        ]


class TestMemoization:
    def test_cached_returns_same_instance(self):
        first = SignatureExtractor.cached(60, 80)
        second = SignatureExtractor.cached(60, 80)
        assert first is second

    def test_cached_distinguishes_configs(self):
        default = SignatureExtractor.cached(60, 80)
        narrow = SignatureExtractor.cached(
            60, 80, config=RegionConfig(width_fraction=0.2)
        )
        assert default is not narrow
        assert default.geometry != narrow.geometry

    def test_cache_stats_counters_move(self):
        before = SignatureExtractor.cache_stats()
        SignatureExtractor.cached(72, 96)
        SignatureExtractor.cached(72, 96)
        after = SignatureExtractor.cache_stats()
        assert after["hits"] + after["misses"] > before["hits"] + before["misses"]
        assert after["name"] == "signature_extractors"

    def test_operator_cache_shared_across_extractors(self):
        a = SignatureExtractor(120, 160)
        b = SignatureExtractor(120, 160)
        assert a is not b  # direct construction is not memoized
        assert a._operators() is b._operators()
        stats = operator_cache_stats()
        assert stats["name"] == "fused_operators"
        assert stats["size"] >= 1


class TestKeyedLRU:
    def test_eviction_order(self):
        cache = KeyedLRU(capacity=2)
        cache.get_or_create("a", lambda: 1)
        cache.get_or_create("b", lambda: 2)
        cache.get_or_create("a", lambda: -1)  # refresh a
        cache.get_or_create("c", lambda: 3)  # evicts b (a was refreshed)
        assert cache.get_or_create("b", lambda: 99) == 99  # rebuilt, evicts a
        assert cache.get_or_create("c", lambda: -1) == 3  # c survived throughout

    def test_stats(self):
        cache = KeyedLRU(capacity=4, name="probe")
        cache.get_or_create("x", lambda: 0)
        cache.get_or_create("x", lambda: 0)
        stats = cache.stats()
        assert stats == {
            "name": "probe",
            "capacity": 4,
            "size": 1,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "hit_rate": 0.5,
        }

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            KeyedLRU(capacity=0)


class TestExtractionConfig:
    def test_defaults(self):
        cfg = ExtractionConfig()
        assert cfg.use_fused and cfg.chunk_frames == 256 and cfg.workers == 1

    def test_part_of_pipeline_config(self):
        pipeline = PipelineConfig()
        assert pipeline.extraction == ExtractionConfig()
        tuned = pipeline.with_overrides(extraction=ExtractionConfig(workers=4))
        assert tuned.extraction.workers == 4

    def test_validation(self):
        with pytest.raises(QueryError):
            ExtractionConfig(chunk_frames=0)
        with pytest.raises(QueryError):
            ExtractionConfig(workers=0)
        ExtractionConfig(chunk_frames=None)  # explicit "no chunking" is fine
