"""Tests for repro.config."""

import pytest

from repro.config import (
    PipelineConfig,
    QueryConfig,
    RegionConfig,
    SBDConfig,
    SceneTreeConfig,
)
from repro.errors import DimensionError, QueryError


class TestRegionConfig:
    def test_defaults_match_paper(self):
        config = RegionConfig()
        assert config.width_fraction == 0.1
        assert config.snap_to_size_set is True

    def test_estimated_strip_width_is_tenth_of_frame(self):
        assert RegionConfig().estimated_strip_width(160) == 16

    def test_estimated_strip_width_floors(self):
        assert RegionConfig().estimated_strip_width(155) == 15

    def test_estimated_strip_width_at_least_one(self):
        assert RegionConfig().estimated_strip_width(5) == 1

    @pytest.mark.parametrize("fraction", [0.0, 0.5, -0.1, 1.0])
    def test_rejects_bad_fraction(self, fraction):
        with pytest.raises(DimensionError):
            RegionConfig(width_fraction=fraction)


class TestSBDConfig:
    def test_defaults(self):
        config = SBDConfig()
        assert config.sign_tolerance == 0.10
        assert config.min_shot_frames == 3

    def test_threshold_conversion_to_channel_units(self):
        config = SBDConfig(sign_tolerance=0.10)
        assert config.sign_threshold_255 == pytest.approx(25.6)
        assert config.pixel_match_threshold_255 == pytest.approx(25.6)

    @pytest.mark.parametrize(
        "field", ["sign_tolerance", "signature_tolerance",
                  "pixel_match_tolerance", "min_match_run_fraction"]
    )
    def test_rejects_out_of_range_tolerances(self, field):
        with pytest.raises(QueryError):
            SBDConfig(**{field: 0.0})
        with pytest.raises(QueryError):
            SBDConfig(**{field: 1.5})

    def test_rejects_zero_min_shot_frames(self):
        with pytest.raises(QueryError):
            SBDConfig(min_shot_frames=0)


class TestSceneTreeConfig:
    def test_defaults_match_paper(self):
        config = SceneTreeConfig()
        assert config.relationship_tolerance == 0.10
        assert config.compare_with_previous_fallback is True
        assert config.max_frames_compared is None

    def test_rejects_bad_tolerance(self):
        with pytest.raises(QueryError):
            SceneTreeConfig(relationship_tolerance=0.0)

    def test_rejects_bad_cap(self):
        with pytest.raises(QueryError):
            SceneTreeConfig(max_frames_compared=0)


class TestQueryConfig:
    def test_paper_defaults_alpha_beta_one(self):
        config = QueryConfig()
        assert config.alpha == 1.0
        assert config.beta == 1.0

    def test_rejects_negative(self):
        with pytest.raises(QueryError):
            QueryConfig(alpha=-0.5)


class TestPipelineConfig:
    def test_bundles_defaults(self):
        config = PipelineConfig()
        assert config.query.alpha == 1.0
        assert config.sbd.min_shot_frames == 3

    def test_with_overrides_replaces_section(self):
        config = PipelineConfig().with_overrides(query=QueryConfig(alpha=2.0))
        assert config.query.alpha == 2.0
        assert config.sbd.min_shot_frames == 3  # untouched

    def test_configs_are_frozen(self):
        with pytest.raises(AttributeError):
            PipelineConfig().query.alpha = 3.0  # type: ignore[misc]
