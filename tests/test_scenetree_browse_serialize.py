"""Tests for browsing sessions and scene-tree serialization."""

import numpy as np
import pytest

from repro.errors import SceneTreeError
from repro.scenetree.browse import BrowsingSession
from repro.scenetree.builder import SceneTreeBuilder
from repro.scenetree.serialize import scene_tree_from_dict, scene_tree_to_dict


def _tree():
    base = {"A": 200, "B": 120, "C": 60, "D": 20}
    spec = [("A", 0), ("B", 0), ("A", 1), ("B", 1), ("C", 0),
            ("A", 2), ("C", 1), ("D", 0), ("D", 1), ("D", 2)]
    signs = [
        np.full((5 + k, 3), base[letter] + v * 8, dtype=np.uint8)
        for k, (letter, v) in enumerate(spec)
    ]
    return SceneTreeBuilder().build(signs, clip_name="nav")


class TestBrowsingSession:
    def test_starts_at_root(self):
        tree = _tree()
        session = BrowsingSession(tree)
        assert session.current is tree.root

    def test_descend_ascend(self):
        session = BrowsingSession(_tree())
        child = session.descend(0)
        assert child.parent is session.tree.root
        assert session.ascend() is session.tree.root

    def test_descend_out_of_range(self):
        session = BrowsingSession(_tree())
        with pytest.raises(SceneTreeError):
            session.descend(99)

    def test_descend_from_leaf_rejected(self):
        session = BrowsingSession(_tree())
        while not session.current.is_leaf:
            session.descend(0)
        with pytest.raises(SceneTreeError):
            session.descend(0)

    def test_ascend_from_root_rejected(self):
        session = BrowsingSession(_tree())
        with pytest.raises(SceneTreeError):
            session.ascend()

    def test_sibling_navigation(self):
        session = BrowsingSession(_tree())
        session.descend(0)
        first = session.current
        second = session.sibling(1)
        assert second is not first
        assert session.sibling(-1) is first

    def test_sibling_of_root_rejected(self):
        session = BrowsingSession(_tree())
        with pytest.raises(SceneTreeError):
            session.sibling()

    def test_jump_to_label(self):
        tree = _tree()
        session = BrowsingSession(tree)
        target = tree.leaves[4].label
        assert session.jump_to(target) is tree.leaves[4]

    def test_back_undoes_moves(self):
        session = BrowsingSession(_tree())
        root = session.current
        session.descend(0)
        session.descend(0)
        session.back()
        session.back()
        assert session.current is root

    def test_back_without_history_rejected(self):
        with pytest.raises(SceneTreeError):
            BrowsingSession(_tree()).back()

    def test_storyboard_ordered_top_down(self):
        session = BrowsingSession(_tree())
        board = session.storyboard()
        levels = [int(label.rsplit("^", 1)[1]) for label, _ in board]
        assert levels == sorted(levels, reverse=True)
        # Every tree node appears exactly once.
        assert len(board) == len(session.tree.nodes())

    def test_storyboard_with_floor(self):
        session = BrowsingSession(_tree())
        board = session.storyboard(max_level=1)
        assert all(int(label.rsplit("^", 1)[1]) >= 1 for label, _ in board)

    def test_path_from_root(self):
        tree = _tree()
        session = BrowsingSession(tree)
        session.descend(0)
        path = session.path_from_root()
        assert path[0] == tree.root.label
        assert path[-1] == session.current.label


class TestSerialization:
    def test_round_trip(self):
        tree = _tree()
        payload = scene_tree_to_dict(tree)
        rebuilt = scene_tree_from_dict(payload)
        rebuilt.validate()
        assert rebuilt.clip_name == tree.clip_name
        assert rebuilt.n_shots == tree.n_shots
        assert [n.label for n in rebuilt.nodes()] == [n.label for n in tree.nodes()]
        assert [n.representative_frame for n in rebuilt.nodes()] == [
            n.representative_frame for n in tree.nodes()
        ]

    def test_json_compatible(self):
        import json

        payload = scene_tree_to_dict(_tree())
        assert scene_tree_from_dict(json.loads(json.dumps(payload))).n_shots == 10

    def test_rejects_unknown_version(self):
        payload = scene_tree_to_dict(_tree())
        payload["version"] = 99
        with pytest.raises(SceneTreeError):
            scene_tree_from_dict(payload)

    def test_rejects_multiple_roots(self):
        payload = scene_tree_to_dict(_tree())
        payload["nodes"][1]["parent"] = None  # orphan a subtree
        with pytest.raises(SceneTreeError):
            scene_tree_from_dict(payload)

    def test_rejects_bad_parent_position(self):
        payload = scene_tree_to_dict(_tree())
        payload["nodes"][1]["parent"] = 10_000
        with pytest.raises(SceneTreeError):
            scene_tree_from_dict(payload)
