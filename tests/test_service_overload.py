"""Overload contract over HTTP: backpressure (429), deadlines (503),
body caps (413), and readiness — the server sheds load, never breaks.

Marked ``overload``; run in the CI overload job alongside the chaos
and drain suites."""

import contextlib
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service.engine import JobStatus, ServiceEngine
from repro.service.server import create_server
from repro.testing.chaos import run_overload_burst

pytestmark = pytest.mark.overload


def _request(base_url, method, path, body=None, headers=None, timeout=30.0):
    """Returns (status, payload, headers) without raising on 4xx/5xx."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    all_headers = {"Content-Type": "application/json"} if data else {}
    all_headers.update(headers or {})
    request = urllib.request.Request(
        base_url + path, data=data, method=method, headers=all_headers
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return (
                response.status,
                json.loads(response.read().decode("utf-8")),
                dict(response.headers),
            )
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8")), dict(error.headers)


@contextlib.contextmanager
def _serve(engine, **server_kwargs):
    server = create_server(engine, **server_kwargs)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        engine.shutdown()


def _spec(video_id, seed=0):
    return {
        "source": "synthetic",
        "video_id": video_id,
        "n_shots": 2,
        "frames_per_shot": 4,
        "rows": 16,
        "cols": 16,
        "seed": seed,
    }


class TestBackpressure:
    def test_burst_sheds_with_429_and_never_5xx(self):
        engine = ServiceEngine(
            n_workers=1,
            max_queue=3,
            watchdog_interval=0,
            ingest_hook=lambda clip: time.sleep(0.05),
        )
        with _serve(engine) as base_url:
            capacity = 3 + 1  # queue bound + one in-flight slot
            burst = run_overload_burst(
                base_url, 2 * capacity, workers=capacity, seed=3
            )
            assert burst["server_errors"] == 0, burst
            assert burst["transport_errors"] == 0, burst
            assert burst["rejected_429"] >= 1, burst
            assert burst["retry_after_max_s"] >= 1.0
            # The queue-depth gauge never exceeded the configured bound.
            status, metrics, _ = _request(base_url, "GET", "/metrics")
            assert status == 200
            assert metrics["gauges"]["ingest_queue_depth_peak"] <= 3
            assert metrics["counters"]["ingest_rejected_overload"] >= 1
            assert metrics["overload"]["queue_capacity"] == 3
            # After the burst every accepted job completes.
            engine.drain(timeout=60)
            for job_id in burst["accepted_job_ids"]:
                assert engine.job(job_id).status is JobStatus.DONE

    def test_429_body_names_the_reason_and_retry_after(self):
        gate = threading.Event()
        engine = ServiceEngine(
            n_workers=1,
            max_queue=1,
            watchdog_interval=0,
            ingest_hook=lambda clip: gate.wait(30),
        )
        with _serve(engine) as base_url:
            try:
                # First job occupies the worker, second fills the
                # queue; the third must be rejected deterministically.
                _request(base_url, "POST", "/ingest", _spec("held-0"))
                deadline = time.monotonic() + 5
                while engine.overload_payload()["workers_busy"] < 1:
                    assert time.monotonic() < deadline, "worker never started"
                    time.sleep(0.01)
                _request(base_url, "POST", "/ingest", _spec("held-1"))
                status, payload, headers = _request(
                    base_url, "POST", "/ingest", _spec("held-2")
                )
                assert status == 429
                assert payload["reason"] == "overloaded"
                assert payload["retry_after_s"] > 0
                assert int(headers["Retry-After"]) >= 1
            finally:
                gate.set()
            engine.drain(timeout=60)

    def test_unbounded_queue_never_429s(self):
        engine = ServiceEngine(n_workers=1, watchdog_interval=0)
        with _serve(engine) as base_url:
            burst = run_overload_burst(base_url, 8, workers=4, seed=5)
            assert burst["rejected_429"] == 0
            assert len(burst["accepted_job_ids"]) == 8
            engine.drain(timeout=120)


class TestDeadlines:
    def test_expired_deadline_is_a_structured_503(self):
        engine = ServiceEngine(n_workers=1, watchdog_interval=0)
        with _serve(engine) as base_url:
            # Wedge the read path: a writer holds the lock, so any
            # deadline-carrying read must give up within its budget.
            engine.lock.acquire_write()
            try:
                started = time.perf_counter()
                status, payload, _ = _request(
                    base_url, "GET", "/videos", headers={"X-Deadline-Ms": "100"}
                )
                elapsed = time.perf_counter() - started
            finally:
                engine.lock.release_write()
            assert status == 503
            assert payload["reason"] == "deadline_exceeded"
            assert elapsed < 5.0, "deadline did not bound the wait"
            _, metrics, _ = _request(base_url, "GET", "/metrics")
            assert metrics["counters"]["deadline_exceeded"] >= 1

    def test_default_deadline_applies_without_header(self):
        engine = ServiceEngine(
            n_workers=1, watchdog_interval=0, default_deadline_ms=100
        )
        with _serve(engine) as base_url:
            engine.lock.acquire_write()
            try:
                status, payload, _ = _request(base_url, "GET", "/videos")
            finally:
                engine.lock.release_write()
            assert status == 503
            assert payload["reason"] == "deadline_exceeded"

    def test_request_within_deadline_succeeds(self):
        engine = ServiceEngine(n_workers=1, watchdog_interval=0)
        with _serve(engine) as base_url:
            status, payload, _ = _request(
                base_url,
                "GET",
                "/query?var_ba=1&var_oa=1",
                headers={"X-Deadline-Ms": "5000"},
            )
            assert status == 200
            assert payload["count"] == 0

    def test_malformed_deadline_header_is_a_400(self):
        engine = ServiceEngine(n_workers=1, watchdog_interval=0)
        with _serve(engine) as base_url:
            status, payload, _ = _request(
                base_url, "GET", "/videos", headers={"X-Deadline-Ms": "soon"}
            )
            assert status == 400
            status, _, _ = _request(
                base_url, "GET", "/videos", headers={"X-Deadline-Ms": "-50"}
            )
            assert status == 400


class TestBodyCap:
    def test_oversized_body_is_a_413(self):
        engine = ServiceEngine(n_workers=1, watchdog_interval=0)
        with _serve(engine, max_body_bytes=256) as base_url:
            big = _spec("big")
            big["padding"] = "x" * 1024
            status, payload, _ = _request(base_url, "POST", "/ingest", big)
            assert status == 413
            assert payload["reason"] == "body_too_large"
            assert payload["max_body_bytes"] == 256

    def test_body_within_cap_is_accepted(self):
        engine = ServiceEngine(n_workers=1, watchdog_interval=0)
        with _serve(engine, max_body_bytes=4096) as base_url:
            status, payload, _ = _request(base_url, "POST", "/ingest", _spec("ok"))
            assert status == 202
            engine.wait_for(payload["job_id"], timeout=60)


class TestReadiness:
    def test_ready_flips_to_503_on_drain(self):
        engine = ServiceEngine(n_workers=1, watchdog_interval=0)
        with _serve(engine) as base_url:
            status, payload, _ = _request(base_url, "GET", "/ready")
            assert status == 200 and payload["ready"]
            engine.begin_drain()
            status, payload, _ = _request(base_url, "GET", "/ready")
            assert status == 503 and not payload["ready"]
            # Liveness stays up while readiness is down.
            status, health, _ = _request(base_url, "GET", "/health")
            assert status == 200
            assert health["status"] == "draining"
            # New ingests are refused as draining, with Retry-After.
            status, payload, headers = _request(
                base_url, "POST", "/ingest", _spec("late")
            )
            assert status == 503
            assert payload["reason"] == "draining"
            assert "Retry-After" in headers
