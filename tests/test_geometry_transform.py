"""Tests for repro.geometry.transform (FBA → TBA unfolding, Fig. 2)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import DimensionError
from repro.geometry.regions import compute_frame_geometry
from repro.geometry.transform import extract_tba, resample_region, unfold_fba


def _marked_frame(rows=120, cols=160):
    """Frame with distinct values in each FBA piece and the FOA."""
    g = compute_frame_geometry(rows, cols)
    frame = np.zeros((rows, cols, 3), dtype=np.uint8)
    w = g.w_est
    frame[:w, :, :] = 10                  # top bar
    frame[w:, :w, :] = 20                 # left column
    frame[w:, cols - w :, :] = 30         # right column
    frame[w:, w : cols - w, :] = 99       # FOA (must not leak into TBA)
    return frame, g


class TestUnfoldFBA:
    def test_strip_shape(self):
        frame, g = _marked_frame()
        strip = unfold_fba(frame, g)
        assert strip.shape == (g.w_est, g.l_est, 3)

    def test_segment_order_left_top_right(self):
        frame, g = _marked_frame()
        strip = unfold_fba(frame, g)
        h = g.h_est
        assert np.all(strip[:, :h] == 20)          # rotated left column
        assert np.all(strip[:, h : h + 160] == 10)  # top bar
        assert np.all(strip[:, h + 160 :] == 30)    # rotated right column

    def test_foa_never_leaks_into_strip(self):
        frame, g = _marked_frame()
        strip = unfold_fba(frame, g)
        assert not np.any(strip == 99)

    def test_corner_adjacency_preserved(self):
        """Pixels adjacent across the ⊓ corner stay adjacent in the strip."""
        rows, cols = 120, 160
        g = compute_frame_geometry(rows, cols)
        w = g.w_est
        frame = np.zeros((rows, cols, 3), dtype=np.uint8)
        # Mark the top row of the left column (touches the bar's left end).
        frame[w, :w, :] = 77
        strip = unfold_fba(frame, g)
        # After clockwise rotation it is the rightmost column of the
        # left segment — i.e. strip column h-1.
        assert np.all(strip[:, g.h_est - 1] == 77)

    def test_rejects_non_rgb(self):
        _, g = _marked_frame()
        with pytest.raises(Exception):
            unfold_fba(np.zeros((120, 160), dtype=np.uint8), g)


class TestResampleRegion:
    def test_identity_when_shapes_match(self):
        region = np.arange(5 * 7 * 3, dtype=np.uint8).reshape(5, 7, 3)
        assert resample_region(region, (5, 7)) is region

    def test_downsample_shape(self):
        region = np.zeros((16, 368, 3), dtype=np.uint8)
        out = resample_region(region, (13, 253))
        assert out.shape == (13, 253, 3)

    def test_upsample_shape(self):
        region = np.zeros((104, 128, 3), dtype=np.uint8)
        out = resample_region(region, (125, 125))
        assert out.shape == (125, 125, 3)

    def test_constant_region_stays_constant(self):
        region = np.full((16, 368, 3), 42, dtype=np.uint8)
        assert np.all(resample_region(region, (13, 253)) == 42)

    def test_monotone_mapping(self):
        """Column order survives resampling (no reordering)."""
        region = np.zeros((4, 100, 3), dtype=np.uint8)
        region[:, :, 0] = np.arange(100, dtype=np.uint8)[None, :]
        out = resample_region(region, (4, 61))
        values = out[0, :, 0].astype(int)
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_rejects_empty_output(self):
        with pytest.raises(DimensionError):
            resample_region(np.zeros((4, 4, 3)), (0, 5))

    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=40),
    )
    def test_property_output_values_come_from_input(self, r_in, c_in, r_out, c_out):
        rng = np.random.default_rng(r_in * 41 + c_in)
        region = rng.integers(0, 255, size=(r_in, c_in, 3)).astype(np.uint8)
        out = resample_region(region, (r_out, c_out))
        assert out.shape == (r_out, c_out, 3)
        flat_in = set(map(tuple, region.reshape(-1, 3)))
        flat_out = set(map(tuple, out.reshape(-1, 3)))
        assert flat_out <= flat_in


class TestExtractTBA:
    def test_snapped_shape(self):
        frame, g = _marked_frame()
        tba = extract_tba(frame, g)
        assert tba.shape == (g.w, g.l, 3)

    def test_background_only_content(self):
        frame, g = _marked_frame()
        tba = extract_tba(frame, g)
        assert set(np.unique(tba)) <= {10, 20, 30}
