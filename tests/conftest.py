"""Shared fixtures.

Expensive artifacts (rendered clips, detections) are session-scoped:
every test module reuses one figure-5 clip, one friends clip, and one
small movie corpus instead of re-rendering per test.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.sbd.detector import CameraTrackingDetector, DetectionResult

# Property tests call rendering/extraction code whose first run pays
# numpy warm-up costs; wall-clock deadlines only add flakiness there.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
from repro.video.clip import VideoClip
from repro.workloads.figure5 import make_figure5_clip
from repro.workloads.friends import make_friends_clip
from repro.workloads.movies import make_movie_corpus


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def flat_frame() -> np.ndarray:
    """A 120x160 mid-gray frame."""
    return np.full((120, 160, 3), 128, dtype=np.uint8)


@pytest.fixture
def two_scene_clip() -> VideoClip:
    """Twenty frames: ten gray, then ten blue — one obvious cut at 10."""
    frames = np.zeros((20, 120, 160, 3), dtype=np.uint8)
    frames[:10] = 100
    frames[10:] = 30
    frames[10:, :, :, 2] = 200
    return VideoClip("two-scene", frames, fps=3.0)


@pytest.fixture(scope="session")
def figure5():
    """The rendered Figure 5 clip and its ground truth."""
    return make_figure5_clip()


@pytest.fixture(scope="session")
def figure5_detection(figure5) -> DetectionResult:
    clip, _ = figure5
    return CameraTrackingDetector().detect(clip)


@pytest.fixture(scope="session")
def friends():
    """The rendered Friends restaurant segment and its ground truth."""
    return make_friends_clip()


@pytest.fixture(scope="session")
def friends_detection(friends) -> DetectionResult:
    clip, _ = friends
    return CameraTrackingDetector().detect(clip)


@pytest.fixture(scope="session")
def small_movie_corpus():
    """A reduced two-movie corpus (fast enough for many tests)."""
    return make_movie_corpus(scale=0.3)
