"""Tests for repro.vdbms (catalog, storage, VideoDatabase)."""

import numpy as np
import pytest

from repro.config import PipelineConfig, QueryConfig
from repro.errors import CatalogError, StorageError
from repro.vdbms.catalog import Catalog, CatalogEntry
from repro.vdbms.database import VideoDatabase
from repro.vdbms.storage import DatabaseStorage
from repro.video.clip import VideoClip
from repro.workloads.taxonomy import VideoCategory


def _entry(video_id="v1", category=None):
    return CatalogEntry(
        video_id=video_id,
        n_frames=100,
        rows=120,
        cols=160,
        fps=3.0,
        n_shots=10,
        category=category,
    )


class TestCatalog:
    def test_add_get(self):
        catalog = Catalog()
        catalog.add(_entry())
        assert catalog.get("v1").n_shots == 10
        assert "v1" in catalog
        assert len(catalog) == 1

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.add(_entry())
        with pytest.raises(CatalogError):
            catalog.add(_entry())

    def test_get_missing(self):
        with pytest.raises(CatalogError):
            Catalog().get("nope")

    def test_remove(self):
        catalog = Catalog()
        catalog.add(_entry())
        removed = catalog.remove("v1")
        assert removed.video_id == "v1"
        assert "v1" not in catalog

    def test_category_scoping(self):
        comedy = VideoCategory(genres=("comedy",), forms=("feature",))
        western = VideoCategory(genres=("western",), forms=("feature",))
        catalog = Catalog()
        catalog.add(_entry("funny", comedy))
        catalog.add(_entry("dusty", western))
        catalog.add(_entry("unlabeled"))
        hits = catalog.in_category(comedy)
        assert [e.video_id for e in hits] == ["funny"]

    def test_round_trip(self):
        catalog = Catalog()
        catalog.add(_entry("a", VideoCategory(genres=("war",), forms=("feature",))))
        catalog.add(_entry("b"))
        rebuilt = Catalog.from_dict(catalog.to_dict())
        assert rebuilt.ids() == ["a", "b"]
        assert rebuilt.get("a").category.genres == ("war",)
        assert rebuilt.get("b").category is None


class TestStorage:
    def test_initialize_layout(self, tmp_path):
        storage = DatabaseStorage(tmp_path / "db")
        storage.initialize()
        assert (tmp_path / "db" / "videos").is_dir()
        assert (tmp_path / "db" / "trees").is_dir()
        assert not storage.exists()  # nothing saved yet

    def test_missing_file_raises(self, tmp_path):
        storage = DatabaseStorage(tmp_path)
        with pytest.raises(StorageError):
            storage.load_catalog()

    def test_corrupt_json_raises(self, tmp_path):
        storage = DatabaseStorage(tmp_path)
        storage.catalog_path.write_text("{not json")
        with pytest.raises(StorageError):
            storage.load_catalog()

    def test_video_round_trip(self, tmp_path):
        storage = DatabaseStorage(tmp_path)
        frames = np.zeros((3, 20, 20, 3), dtype=np.uint8)
        clip = VideoClip("weird/name:clip", frames)
        storage.save_video(clip)
        loaded = storage.load_video("weird/name:clip")
        assert np.array_equal(loaded.frames, frames)

    def test_load_missing_video(self, tmp_path):
        with pytest.raises(StorageError):
            DatabaseStorage(tmp_path).load_video("nope")


class TestVideoDatabase:
    @pytest.fixture(scope="class")
    def db(self, figure5, friends):
        database = VideoDatabase()
        clip5, truth5 = figure5
        clipf, truthf = friends
        database.ingest(clip5, archetypes=truth5.archetypes_for_ranges)
        database.ingest(
            clipf,
            category=VideoCategory(genres=("comedy",), forms=("television series",)),
        )
        return database

    def test_ingest_report(self, figure5):
        clip, _ = figure5
        database = VideoDatabase()
        report = database.ingest(clip)
        assert report.video_id == "figure5"
        assert report.n_shots == 10
        assert report.n_frames == 625
        assert report.tree_height == 3
        assert report.indexed_entries == 10

    def test_duplicate_ingest_rejected(self, db, figure5):
        clip, _ = figure5
        with pytest.raises(CatalogError):
            db.ingest(clip)

    def test_query_by_shot_excludes_probe(self, db):
        answer = db.query_by_shot("figure5", 8, limit=5)
        assert all(
            not (m.video_id == "figure5" and m.shot_number == 8)
            for m in answer.matches
        )

    def test_d_takes_match_each_other(self, db):
        """The D takes share lighting dynamics: mutual matches."""
        answer = db.query_by_shot("figure5", 9, limit=3)
        ids = {(m.video_id, m.shot_number) for m in answer.matches}
        assert ("figure5", 8) in ids or ("figure5", 10) in ids

    def test_query_routes_to_scene_nodes(self, db):
        answer = db.query_by_shot("figure5", 2, limit=3)
        assert len(answer.routes) == len(answer.matches)
        for route in answer.routes:
            if route.entry.video_id == "figure5":
                assert route.node is not None

    def test_category_scoped_query(self, db):
        sitcoms = VideoCategory(genres=("comedy",), forms=("television series",))
        probe = db.shot_entry("friends-restaurant", 1)
        answer = db.query(
            probe.features.var_ba, probe.features.var_oa, category=sitcoms
        )
        assert all(m.video_id == "friends-restaurant" for m in answer.matches)

    def test_browse_session(self, db):
        session = db.browse("figure5")
        assert session.current is db.scene_tree("figure5").root

    def test_shots_accessor(self, db):
        shots = db.shots("figure5")
        assert len(shots) == 10

    def test_unknown_video_accessors(self, db):
        with pytest.raises(CatalogError):
            db.scene_tree("nope")
        with pytest.raises(CatalogError):
            db.shots("nope")
        with pytest.raises(CatalogError):
            db.shot_entry("nope", 1)

    def test_save_load_round_trip(self, db, tmp_path):
        root = db.save(tmp_path / "vdb")
        loaded = VideoDatabase.load(root)
        assert set(loaded.catalog.ids()) == {"figure5", "friends-restaurant"}
        assert len(loaded.index) == len(db.index)
        tree = loaded.scene_tree("figure5")
        tree.validate()
        # Queries work identically after reload.
        before = db.query_by_shot("figure5", 1, limit=3)
        after = loaded.query_by_shot("figure5", 1, limit=3)
        assert [m.shot_id for m in before.matches] == [
            m.shot_id for m in after.matches
        ]

    def test_custom_config_propagates(self, figure5):
        clip, _ = figure5
        config = PipelineConfig().with_overrides(query=QueryConfig(alpha=0.01, beta=0.01))
        database = VideoDatabase(config=config)
        database.ingest(clip)
        # A tiny tolerance box returns far fewer matches than the default.
        tight = database.query_by_shot("figure5", 1)
        assert len(tight.matches) <= 4


class TestRemove:
    def _db(self, figure5, friends):
        db = VideoDatabase()
        db.ingest(figure5[0])
        db.ingest(friends[0])
        return db

    def test_remove_drops_everything(self, figure5, friends):
        db = self._db(figure5, friends)
        removed = db.remove("figure5")
        assert removed == 10
        assert "figure5" not in db.catalog
        with pytest.raises(CatalogError):
            db.scene_tree("figure5")
        assert all(e.video_id != "figure5" for e in db.index.entries)
        # The other video is untouched and queryable.
        assert db.scene_tree("friends-restaurant").n_shots == 12

    def test_remove_unknown_rejected(self, figure5, friends):
        db = self._db(figure5, friends)
        with pytest.raises(CatalogError):
            db.remove("nope")

    def test_index_stays_sorted_after_remove(self, figure5, friends):
        db = self._db(figure5, friends)
        db.remove("friends-restaurant")
        d_vs = [e.d_v for e in db.index.entries]
        assert d_vs == sorted(d_vs)

    def test_save_prunes_stale_tree_files(self, figure5, friends, tmp_path):
        db = self._db(figure5, friends)
        root = db.save(tmp_path / "db")
        storage = DatabaseStorage(root)
        tree_file = storage.current_tree_path("figure5")
        assert tree_file is not None and tree_file.exists()
        db.remove("figure5")
        db.save(root)
        # The manifest no longer tracks the tree and its file is
        # garbage-collected after the commit.
        assert storage.current_tree_path("figure5") is None
        assert not tree_file.exists()
        loaded = VideoDatabase.load(root)
        assert loaded.catalog.ids() == ["friends-restaurant"]

    def test_reingest_after_remove(self, figure5, friends):
        db = self._db(figure5, friends)
        db.remove("figure5")
        report = db.ingest(figure5[0])
        assert report.n_shots == 10


class TestSafeIdInjective:
    """Regression: ids like ``a/b`` and ``a_b`` used to sanitize to the
    same filename and silently overwrite each other's trees/videos."""

    def test_colliding_ids_get_distinct_paths(self, tmp_path):
        storage = DatabaseStorage(tmp_path)
        for left, right in [("a/b", "a_b"), ("a b", "a_b"), ("x:y", "x_y")]:
            assert storage.tree_path(left) != storage.tree_path(right)
            assert storage.video_path(left) != storage.video_path(right)

    def test_same_id_is_stable(self, tmp_path):
        storage = DatabaseStorage(tmp_path)
        assert storage.tree_path("a/b") == storage.tree_path("a/b")

    def test_colliding_videos_both_survive(self, tmp_path):
        storage = DatabaseStorage(tmp_path)
        frames_a = np.full((3, 20, 20, 3), 10, dtype=np.uint8)
        frames_b = np.full((3, 20, 20, 3), 200, dtype=np.uint8)
        storage.save_video(VideoClip("a/b", frames_a))
        storage.save_video(VideoClip("a_b", frames_b))
        assert np.array_equal(storage.load_video("a/b").frames, frames_a)
        assert np.array_equal(storage.load_video("a_b").frames, frames_b)

    def test_database_save_load_with_slashy_ids(self, tmp_path):
        db = VideoDatabase()
        for name, level in [("team/clip", 40), ("team_clip", 220)]:
            frames = np.zeros((12, 60, 80, 3), dtype=np.uint8)
            frames[:6] = level
            frames[6:] = 255 - level
            db.ingest(VideoClip(name, frames, fps=3.0))
        db.save(tmp_path / "db")
        loaded = VideoDatabase.load(tmp_path / "db")
        assert set(loaded.catalog.ids()) == {"team/clip", "team_clip"}
        # Each id keeps its own scene tree (previously one overwrote the
        # other on disk).
        assert loaded.scene_tree("team/clip").clip_name == "team/clip"
        assert loaded.scene_tree("team_clip").clip_name == "team_clip"
