"""Service resilience: retry-with-backoff, poison-job quarantine, and
a concurrency stress test over a durable, fault-injected database."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import StorageError
from repro.service.engine import JobStatus, ServiceEngine
from repro.service.server import create_server
from repro.testing import FaultyFS, FlakyHook
from repro.vdbms.database import VideoDatabase


def _spec(video_id, seed=0, n_shots=3):
    return {
        "source": "synthetic",
        "video_id": video_id,
        "n_shots": n_shots,
        "frames_per_shot": 4,
        "rows": 16,
        "cols": 16,
        "seed": seed,
    }


def _engine(**kwargs):
    kwargs.setdefault("n_workers", 1)
    kwargs.setdefault("retry_base_delay", 0.001)
    kwargs.setdefault("retry_seed", 0)
    return ServiceEngine(**kwargs)


def _request(base_url, method, path, body=None, timeout=30.0):
    """Returns (status, payload) without raising on 4xx/5xx."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        base_url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


class TestRetry:
    def test_transient_fault_is_retried_to_success(self):
        hook = FlakyHook(fail_times=2)
        engine = _engine(max_attempts=3, ingest_hook=hook)
        try:
            job = engine.wait_for(engine.submit_spec(_spec("flaky")).job_id, 60)
            assert job.status is JobStatus.DONE
            assert job.attempts == 3
            assert hook.failures == 2
            metrics = engine.metrics_payload()
            assert metrics["counters"]["ingest_retries"] == 2
            assert metrics["counters"]["ingest_completed"] == 1
            assert "ingest_quarantined" not in metrics["counters"]
            assert "flaky" in engine.db.catalog
        finally:
            engine.shutdown()

    def test_poison_job_is_quarantined(self):
        hook = FlakyHook(fail_times=None, only=lambda clip: clip.name == "poison")
        engine = _engine(max_attempts=3, ingest_hook=hook)
        try:
            job = engine.wait_for(engine.submit_spec(_spec("poison")).job_id, 60)
            assert job.status is JobStatus.QUARANTINED
            assert job.attempts == 3
            assert job.error and "OSError" in job.error
            assert "poison" not in engine.db.catalog
            metrics = engine.metrics_payload()
            assert metrics["counters"]["ingest_quarantined"] == 1
            assert metrics["counters"]["ingest_retries"] == 2
            assert "ingest_completed" not in metrics["counters"]
            # A quarantined worker keeps serving later jobs.
            after = engine.wait_for(engine.submit_spec(_spec("healthy")).job_id, 60)
            assert after.status is JobStatus.DONE
        finally:
            engine.shutdown()

    def test_permanent_os_error_fails_fast(self):
        hook = FlakyHook(
            fail_times=None, exc=lambda msg: FileNotFoundError(msg)
        )
        engine = _engine(max_attempts=5, ingest_hook=hook)
        try:
            job = engine.wait_for(engine.submit_spec(_spec("perm")).job_id, 60)
            assert job.status is JobStatus.FAILED
            assert job.attempts == 1
            metrics = engine.metrics_payload()
            assert metrics["counters"]["ingest_failed"] == 1
            assert "ingest_retries" not in metrics["counters"]
        finally:
            engine.shutdown()

    def test_duplicate_id_fails_without_retry(self):
        engine = _engine(max_attempts=4)
        try:
            first = engine.wait_for(engine.submit_spec(_spec("dup")).job_id, 60)
            assert first.status is JobStatus.DONE
            second = engine.wait_for(engine.submit_spec(_spec("dup")).job_id, 60)
            assert second.status is JobStatus.FAILED
            assert second.attempts == 1
            assert "CatalogError" in second.error
        finally:
            engine.shutdown()

    def test_durable_engine_retries_through_flaky_storage(self, tmp_path):
        root = tmp_path / "db"
        fs = FaultyFS(mode="error", ops=("write",), fail_times=1)
        db = VideoDatabase.open(root, fs=fs)
        engine = _engine(db=db, max_attempts=3)
        try:
            job = engine.wait_for(engine.submit_spec(_spec("durable")).job_id, 60)
            assert job.status is JobStatus.DONE
            assert job.attempts == 2
            assert job.error is None
            assert "StorageError" not in (job.error or "")
        finally:
            engine.shutdown()
        reloaded = VideoDatabase.load(root)
        assert "durable" in reloaded.catalog

    def test_quarantine_surfaced_over_http(self):
        engine = _engine(max_attempts=2, ingest_hook=FlakyHook(fail_times=None))
        server = create_server(engine)
        host, port = server.server_address[:2]
        base_url = f"http://{host}:{port}"
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, submitted = _request(
                base_url, "POST", "/ingest", _spec("http-poison")
            )
            assert status == 202
            engine.wait_for(submitted["job_id"], 60)
            status, job = _request(base_url, "GET", f"/jobs/{submitted['job_id']}")
            assert status == 200
            assert job["status"] == "quarantined"
            assert job["attempts"] == 2
            assert "OSError" in job["error"]
            status, metrics = _request(base_url, "GET", "/metrics")
            assert status == 200
            assert metrics["counters"]["ingest_quarantined"] == 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            engine.shutdown()


class _EveryNth:
    """An ingest hook failing every n-th call (thread-safe)."""

    def __init__(self, n):
        self.n = n
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, clip):
        with self._lock:
            self.calls += 1
            calls = self.calls
        if calls % self.n == 0:
            raise OSError(f"intermittent fault (call {calls})")


@pytest.mark.stress
class TestStress:
    def test_faulty_ingest_under_query_fire(self, tmp_path):
        """Hammer a durable server with queries while flaky ingests run:
        no 5xx responses, no stale cache, and the metrics reconcile."""
        root = tmp_path / "db"
        db = VideoDatabase.open(root)
        engine = ServiceEngine(
            db,
            n_workers=2,
            max_attempts=3,
            retry_base_delay=0.001,
            retry_seed=7,
            ingest_hook=_EveryNth(3),
        )
        server = create_server(engine)
        host, port = server.server_address[:2]
        base_url = f"http://{host}:{port}"
        server_thread = threading.Thread(target=server.serve_forever, daemon=True)
        server_thread.start()

        n_ingests = 8
        bad_statuses = []
        stop = threading.Event()

        def fire_queries():
            k = 0
            while not stop.is_set():
                k += 1
                for _, path in (
                    ("query", f"/query?var_ba={k % 5}&var_oa={k % 7}&alpha=1e6&beta=1e6"),
                    ("videos", "/videos"),
                    ("health", "/health"),
                ):
                    status, _payload = _request(base_url, "GET", path)
                    if status >= 500:
                        bad_statuses.append((path, status))

        readers = [threading.Thread(target=fire_queries) for _ in range(3)]
        for reader in readers:
            reader.start()
        try:
            job_ids = []
            for k in range(n_ingests):
                status, payload = _request(
                    base_url, "POST", "/ingest", _spec(f"stress-{k}", seed=k)
                )
                assert status == 202
                job_ids.append(payload["job_id"])
            engine.drain(timeout=120)
        finally:
            stop.set()
            for reader in readers:
                reader.join(timeout=30)
            server.shutdown()
            server.server_close()
            server_thread.join(timeout=10)
            engine.shutdown()

        assert bad_statuses == []
        jobs = {job_id: engine.job(job_id) for job_id in job_ids}
        done = [j for j in jobs.values() if j.status is JobStatus.DONE]
        quarantined = [
            j for j in jobs.values() if j.status is JobStatus.QUARANTINED
        ]
        failed = [j for j in jobs.values() if j.status is JobStatus.FAILED]
        assert len(done) + len(quarantined) + len(failed) == n_ingests
        assert not failed  # every injected fault was transient
        # Metrics reconcile with the observed job outcomes.
        counters = engine.metrics_payload()["counters"]
        assert counters["ingest_submitted"] == n_ingests
        assert counters.get("ingest_completed", 0) == len(done)
        assert counters.get("ingest_quarantined", 0) == len(quarantined)
        # The cache is not stale: a fresh query equals a direct answer.
        from repro.config import QueryConfig

        payload, _was_cached = engine.query(0.0, 0.0, alpha=1e6, beta=1e6)
        direct = engine.db.query(0.0, 0.0, config=QueryConfig(alpha=1e6, beta=1e6))
        assert payload["count"] == len(direct.matches)
        # Every completed ingest is visible and durable.
        for job in done:
            assert job.report["video_id"] in engine.db.catalog
        reloaded = VideoDatabase.load(root)
        assert set(reloaded.catalog.ids()) == set(engine.db.catalog.ids())
