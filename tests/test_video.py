"""Tests for repro.video (frames, clips, .rvid container, resampling)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EmptyClipError, FrameError, VideoFormatError
from repro.video.clip import VideoClip
from repro.video.frame import frame_shape, validate_frame, validate_frames
from repro.video.io import RVID_MAGIC, read_rvid, stream_rvid, write_rvid
from repro.video.sampling import resample_fps, subsample_indices


def _clip(n=6, rows=8, cols=10, fps=30.0, name="c"):
    rng = np.random.default_rng(n)
    frames = rng.integers(0, 255, size=(n, rows, cols, 3)).astype(np.uint8)
    return VideoClip(name, frames, fps=fps)


class TestFrameValidation:
    def test_accepts_valid_frame(self):
        frame = np.zeros((4, 5, 3), dtype=np.uint8)
        assert validate_frame(frame) is frame

    @pytest.mark.parametrize(
        "bad",
        [
            np.zeros((4, 5), dtype=np.uint8),          # not RGB
            np.zeros((4, 5, 4), dtype=np.uint8),       # 4 channels
            np.zeros((4, 5, 3), dtype=np.float64),     # wrong dtype
            [[1, 2, 3]],                               # not an array
        ],
    )
    def test_rejects_bad_frames(self, bad):
        with pytest.raises(FrameError):
            validate_frame(bad)

    def test_frame_shape(self):
        frames = np.zeros((2, 7, 9, 3), dtype=np.uint8)
        assert frame_shape(frames) == (7, 9)

    def test_validate_frames_rejects_3d(self):
        with pytest.raises(FrameError):
            validate_frames(np.zeros((7, 9, 3), dtype=np.uint8))


class TestVideoClip:
    def test_basic_properties(self):
        clip = _clip(n=6, rows=8, cols=10, fps=3.0)
        assert len(clip) == 6
        assert clip.rows == 8
        assert clip.cols == 10
        assert clip.duration_seconds == pytest.approx(2.0)

    def test_duration_label(self):
        clip = _clip(n=75 * 3, fps=3.0)  # 75 seconds
        assert clip.duration_label == "1:15"

    def test_iteration_and_indexing(self):
        clip = _clip(n=4)
        assert np.array_equal(clip[2], clip.frames[2])
        assert len(list(clip)) == 4

    def test_rejects_empty(self):
        with pytest.raises(EmptyClipError):
            VideoClip("x", np.zeros((0, 4, 4, 3), dtype=np.uint8))

    def test_rejects_bad_fps(self):
        with pytest.raises(FrameError):
            _clip(fps=0)

    def test_slice_is_view(self):
        clip = _clip(n=10)
        sub = clip.slice(2, 5)
        assert len(sub) == 3
        assert np.shares_memory(sub.frames, clip.frames)

    def test_slice_rejects_bad_range(self):
        with pytest.raises(EmptyClipError):
            _clip(n=10).slice(5, 5)

    def test_with_metadata_merges(self):
        clip = _clip().with_metadata(genre="drama")
        assert clip.metadata["genre"] == "drama"


class TestRvidContainer:
    def test_round_trip(self, tmp_path):
        clip = _clip(n=5, rows=12, cols=16, fps=3.0, name="round trip")
        path = write_rvid(clip, tmp_path / "clip.rvid")
        loaded = read_rvid(path)
        assert loaded.name == "round trip"
        assert loaded.fps == 3.0
        assert np.array_equal(loaded.frames, clip.frames)

    def test_streaming_matches_full_read(self, tmp_path):
        clip = _clip(n=7)
        path = write_rvid(clip, tmp_path / "clip.rvid")
        streamed = list(stream_rvid(path))
        assert len(streamed) == 7
        for k, frame in enumerate(streamed):
            assert np.array_equal(frame, clip.frames[k])

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.rvid"
        path.write_bytes(b"NOTAVIDEO" + b"\x00" * 64)
        with pytest.raises(VideoFormatError):
            read_rvid(path)

    def test_truncated_payload(self, tmp_path):
        clip = _clip(n=5)
        path = write_rvid(clip, tmp_path / "clip.rvid")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 100])
        with pytest.raises(VideoFormatError):
            read_rvid(path)

    def test_truncated_stream_raises_midway(self, tmp_path):
        clip = _clip(n=5)
        path = write_rvid(clip, tmp_path / "clip.rvid")
        data = path.read_bytes()
        path.write_bytes(data[: len(RVID_MAGIC) + 24 + 1 + 2 * 8 * 10 * 3])
        with pytest.raises(VideoFormatError):
            list(stream_rvid(path))

    def test_unicode_name(self, tmp_path):
        clip = VideoClip("café—夜", np.zeros((1, 4, 4, 3), dtype=np.uint8))
        path = write_rvid(clip, tmp_path / "u.rvid")
        assert read_rvid(path).name == "café—夜"


class TestResampling:
    def test_paper_rate_30_to_3(self):
        """Sec. 5.1: 30 fps originals decimated to 3 fps."""
        idx = subsample_indices(300, 30.0, 3.0)
        assert len(idx) == 30
        assert idx[0] == 0
        assert idx[1] == 10  # every 10th frame

    def test_identity_rate(self):
        clip = _clip(n=10, fps=3.0)
        assert resample_fps(clip, 3.0) is clip

    def test_resample_clip(self):
        clip = _clip(n=30, fps=30.0)
        out = resample_fps(clip, 3.0)
        assert len(out) == 3
        assert out.fps == 3.0
        assert out.metadata["source_fps"] == 30.0

    def test_rejects_upsampling(self):
        with pytest.raises(FrameError):
            subsample_indices(10, 3.0, 30.0)

    def test_rejects_nonpositive_rates(self):
        with pytest.raises(FrameError):
            subsample_indices(10, 0.0, 3.0)

    @settings(max_examples=30)
    @given(
        st.integers(min_value=1, max_value=500),
        st.floats(min_value=1.0, max_value=60.0),
        st.floats(min_value=0.5, max_value=60.0),
    )
    def test_property_indices_valid_and_monotone(self, n, source, target):
        if target > source:
            source, target = target, source
        idx = subsample_indices(n, source, target)
        assert len(idx) >= 1
        assert idx.min() >= 0 and idx.max() < n
        assert np.all(np.diff(idx) >= 0)
