"""Property: a K-shard cluster is decision-identical to one database.

For seeded synthetic corpora and K in {1, 2, 4}, every impression
query must return exactly the same ranked matches (ids, order, and
browsing routes) from the sharded cluster as from a single
:class:`VideoDatabase` holding the same corpus — including while a
rebalance is relocating videos and after it finishes.  This is the
correctness bar that makes sharding an *implementation detail* rather
than a semantics change.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator, ConsistentHashRouter, Rebalancer
from repro.testing.synth import add_synth_video
from repro.vdbms.database import VideoDatabase
from repro.workloads.taxonomy import VideoCategory

pytestmark = pytest.mark.cluster


def build_corpus(seed: int, n_videos: int):
    """Seeded records shared by the single db and every cluster size."""
    records = []
    rng = np.random.default_rng(seed)
    for k in range(n_videos):
        video_id = f"corpus-{seed}-{k:03d}"
        scratch = VideoDatabase()
        add_synth_video(scratch, video_id, rng)
        records.append(scratch.export_video(video_id))
    return records


def load(records, cluster_sizes):
    single = VideoDatabase()
    clusters = {k: ClusterCoordinator.ephemeral(k) for k in cluster_sizes}
    for record in records:
        single.adopt(record)
        for cluster in clusters.values():
            cluster.adopt(record)
    return single, clusters


def decisions(answer):
    """The client-visible decision: ranked shot identities + routes."""
    return [
        (m.video_id, m.shot_number, r.suggestion)
        for m, r in zip(answer.matches, answer.routes)
    ]


def probe_points(single, stride=5):
    return [
        (e.features.var_ba, e.features.var_oa)
        for e in single.index.entries[::stride]
    ]


class TestDecisionIdentity:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_every_probe_matches_single_database(self, k):
        records = build_corpus(seed=10, n_videos=24)
        single, clusters = load(records, [k])
        cluster = clusters[k]
        for var_ba, var_oa in probe_points(single):
            for limit in (None, 1, 5):
                expected = single.query(var_ba, var_oa, limit=limit)
                got = cluster.query(var_ba, var_oa, limit=limit)
                assert decisions(got) == decisions(expected)
                assert not got.partial

    def test_category_scoped_queries_match(self):
        records = build_corpus(seed=11, n_videos=20)
        single, clusters = load(records, [2, 4])
        category = VideoCategory(genres=("adventure",), forms=("feature",))
        for var_ba, var_oa in probe_points(single, stride=8):
            expected = single.query(var_ba, var_oa, category=category, limit=10)
            for cluster in clusters.values():
                got = cluster.query(var_ba, var_oa, category=category, limit=10)
                assert decisions(got) == decisions(expected)

    def test_query_by_shot_matches(self):
        records = build_corpus(seed=12, n_videos=16)
        single, clusters = load(records, [1, 2, 4])
        probes = single.index.entries[::6]
        for probe in probes:
            expected = single.query_by_shot(
                probe.video_id, probe.shot_number, limit=8
            )
            for cluster in clusters.values():
                got = cluster.query_by_shot(
                    probe.video_id, probe.shot_number, limit=8
                )
                assert decisions(got) == decisions(expected)

    def test_limit_pushdown_agrees_with_full_ranking(self):
        """Per-shard top-k + merge == global ranking truncated to k."""
        records = build_corpus(seed=13, n_videos=24)
        single, clusters = load(records, [4])
        cluster = clusters[4]
        for var_ba, var_oa in probe_points(single, stride=4):
            full = cluster.query(var_ba, var_oa)
            for limit in (1, 2, 7):
                capped = cluster.query(var_ba, var_oa, limit=limit)
                assert decisions(capped) == decisions(full)[:limit]


class TestEquivalenceAcrossRebalance:
    def test_identical_after_resharding(self):
        records = build_corpus(seed=20, n_videos=18)
        single, clusters = load(records, [2])
        cluster = clusters[2]
        points = probe_points(single)
        before = [decisions(cluster.query(b, o, limit=10)) for b, o in points]
        Rebalancer(cluster).reshard(4)
        assert cluster.n_shards == 4
        for (var_ba, var_oa), expected_before in zip(points, before):
            expected = single.query(var_ba, var_oa, limit=10)
            got = cluster.query(var_ba, var_oa, limit=10)
            assert decisions(got) == decisions(expected) == expected_before

    def test_identical_while_rebalance_runs(self):
        """Queries racing the mover never see a wrong or torn answer."""
        records = build_corpus(seed=21, n_videos=20)
        single, clusters = load(records, [4])
        cluster = clusters[4]
        points = probe_points(single, stride=3)
        expected = {
            point: decisions(single.query(*point, limit=10)) for point in points
        }

        failures: list[str] = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                for point in points:
                    got = cluster.query(*point, limit=10)
                    if got.partial:
                        failures.append(f"partial answer at {point}")
                    if decisions(got) != expected[point]:
                        failures.append(f"divergence at {point}")

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            rebalancer = Rebalancer(cluster)
            # Shuffle the whole corpus twice while queries hammer away.
            rebalancer.reshard(2)
            rebalancer.reshard(4)
        finally:
            stop.set()
            thread.join(timeout=60)
        assert not failures, failures[:5]
        assert not Rebalancer(cluster).plan()

    def test_dual_presence_window_is_deduplicated(self):
        """Mid-move state (video on two shards) must not double-count."""
        records = build_corpus(seed=22, n_videos=10)
        single, clusters = load(records, [2])
        cluster = clusters[2]
        victim = cluster.video_ids()[0]
        source = cluster.locate(victim)
        dest = cluster.shards[1 - source.shard_id]
        # Reproduce exactly the moment after the rebalancer's durable
        # copy, before the source delete.
        dest.db.adopt(source.db.export_video(victim))
        for var_ba, var_oa in probe_points(single):
            expected = single.query(var_ba, var_oa)
            got = cluster.query(var_ba, var_oa)
            assert decisions(got) == decisions(expected)
            keys = [(m.video_id, m.shot_number) for m in got.matches]
            assert len(keys) == len(set(keys))
