"""Tests for the streaming detector (repro.sbd.streaming)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SBDConfig
from repro.errors import EmptyClipError, FrameError
from repro.sbd.detector import CameraTrackingDetector
from repro.sbd.streaming import StreamingCameraTrackingDetector
from repro.video.clip import VideoClip


def _clip_from_levels(levels, seg_len=6, rows=60, cols=80):
    frames = np.concatenate(
        [np.full((seg_len, rows, cols, 3), v, dtype=np.uint8) for v in levels]
    )
    return VideoClip("stream", frames)


class TestStreamingBasics:
    def test_emits_shots_incrementally(self):
        clip = _clip_from_levels([40, 140, 240])
        detector = StreamingCameraTrackingDetector(60, 80)
        emitted = []
        for k, frame in enumerate(clip.frames):
            shot = detector.push(frame)
            if shot is not None:
                emitted.append((k, shot.shot.start, shot.shot.stop))
        final = detector.finish()
        assert final is not None
        ranges = [(s, e) for _, s, e in emitted] + [(final.shot.start, final.shot.stop)]
        assert ranges == [(0, 6), (6, 12), (12, 18)]
        # The first shot closes before the clip ends (truly streaming).
        assert emitted[0][0] < len(clip) - 1

    def test_single_shot_stream(self):
        clip = _clip_from_levels([100])
        detector = StreamingCameraTrackingDetector(60, 80)
        shots = list(detector.process_frames(iter(clip.frames)))
        assert [(s.shot.start, s.shot.stop) for s in shots] == [(0, 6)]

    def test_empty_stream_rejected(self):
        detector = StreamingCameraTrackingDetector(60, 80)
        with pytest.raises(EmptyClipError):
            list(detector.process_frames(iter([])))

    def test_finish_twice_rejected(self):
        detector = StreamingCameraTrackingDetector(60, 80)
        detector.push(np.zeros((60, 80, 3), dtype=np.uint8))
        detector.finish()
        with pytest.raises(FrameError):
            detector.finish()

    def test_push_after_finish_rejected(self):
        detector = StreamingCameraTrackingDetector(60, 80)
        detector.push(np.zeros((60, 80, 3), dtype=np.uint8))
        detector.finish()
        with pytest.raises(FrameError):
            detector.push(np.zeros((60, 80, 3), dtype=np.uint8))

    def test_finish_with_no_frames(self):
        detector = StreamingCameraTrackingDetector(60, 80)
        assert detector.finish() is None

    def test_sign_streams_carried(self):
        clip = _clip_from_levels([50, 200])
        detector = StreamingCameraTrackingDetector(60, 80)
        shots = list(detector.process_frames(iter(clip.frames)))
        assert shots[0].signs_ba.shape == (6, 3)
        assert np.all(shots[0].signs_ba == 50)
        assert np.all(shots[1].signs_ba == 200)


class TestStreamingEqualsBatch:
    """The load-bearing property: streaming == batch, bit for bit."""

    def _compare(self, clip, config=None):
        batch = CameraTrackingDetector(config=config).detect(clip)
        stream = StreamingCameraTrackingDetector(
            clip.rows, clip.cols, config=config
        )
        shots = list(stream.process_frames(iter(clip.frames)))
        assert [(s.shot.start, s.shot.stop) for s in shots] == [
            (s.start, s.stop) for s in batch.shots
        ]
        for streamed, batch_shot in zip(shots, batch.shots):
            assert np.array_equal(streamed.signs_ba, batch.shot_signs_ba(batch_shot))
            assert np.array_equal(streamed.signs_oa, batch.shot_signs_oa(batch_shot))
        assert stream.stage_counts.total_pairs == batch.stage_counts.total_pairs
        assert stream.stage_counts.stage1_same == batch.stage_counts.stage1_same

    def test_on_genre_clip(self):
        from repro.synth.genres import GENRE_MODELS, generate_genre_clip

        clip, _ = generate_genre_clip(
            GENRE_MODELS["sitcom"], "s", n_shots=18, seed=21
        )
        self._compare(clip)

    def test_on_figure5(self, figure5):
        clip, _ = figure5
        self._compare(clip)

    def test_with_flash_frames(self):
        """Short flash shots exercise the min-length merging path."""
        frames = np.full((20, 60, 80, 3), 70, dtype=np.uint8)
        frames[9] = 250
        frames[15:] = 180
        self._compare(VideoClip("flash", frames))

    def test_min_shot_frames_one(self):
        frames = np.full((12, 60, 80, 3), 70, dtype=np.uint8)
        frames[5] = 250
        self._compare(VideoClip("f", frames), config=SBDConfig(min_shot_frames=1))

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from([30, 90, 150, 210, 250]),
                st.integers(min_value=1, max_value=7),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_property_random_segmentations(self, segments):
        frames = np.concatenate(
            [
                np.full((n, 40, 48, 3), v, dtype=np.uint8)
                for v, n in segments
            ]
        )
        self._compare(VideoClip("prop", frames))
