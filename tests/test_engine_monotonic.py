"""Job timing must run on the engine's monotonic clock, not wall time.

Regression guard for a real class of bug: ``IngestJob`` previously
stamped lifecycle times with ``time.time()``, so an NTP step between
start and finish skewed (or negated) reported durations.  With a
:class:`FakeClock` injected as the engine clock, these tests pin that
queue-wait and run durations are computed *exactly* on that clock and
that wall-clock stamps survive untouched for display.
"""

from __future__ import annotations

import time

import pytest

from repro.service.engine import JobStatus, ServiceEngine
from repro.testing.chaos import FakeClock

pytestmark = pytest.mark.obs


def _spec(video_id: str) -> dict:
    return {
        "source": "synthetic",
        "video_id": video_id,
        "n_shots": 2,
        "frames_per_shot": 4,
        "rows": 16,
        "cols": 16,
    }


@pytest.fixture
def fake_engine():
    clock = FakeClock(start=1_000.0)
    engine = ServiceEngine(
        n_workers=1,
        watchdog_interval=0,
        clock=clock,
        sleep=clock.sleep,
        ingest_hook=lambda clip: clock.advance(5.0),
    )
    yield engine, clock
    engine.shutdown()


def test_duration_is_measured_on_the_engine_clock(fake_engine):
    engine, clock = fake_engine
    job = engine.submit_spec(_spec("mono-1"))
    engine.wait_for(job.job_id, timeout=60)
    job = engine.job(job.job_id)
    assert job.status is JobStatus.DONE
    # The hook advanced the fake clock by exactly 5s mid-run; nothing
    # else moves it, so the monotonic duration is exact — real elapsed
    # time (milliseconds) would never equal this.
    assert job.duration_s == pytest.approx(5.0)
    assert job.queue_wait_s is not None and job.queue_wait_s >= 0.0
    payload = job.to_dict()
    assert payload["duration_s"] == pytest.approx(5.0)
    assert payload["queue_wait_s"] == pytest.approx(job.queue_wait_s)


def test_wall_clock_stamps_remain_for_display(fake_engine):
    engine, clock = fake_engine
    before = time.time()
    job = engine.submit_spec(_spec("mono-2"))
    engine.wait_for(job.job_id, timeout=60)
    job = engine.job(job.job_id)
    # Display stamps stay civil time (near now), not the fake clock.
    assert abs(job.submitted_at - before) < 120.0
    assert job.started_at is not None and abs(job.started_at - before) < 120.0
    assert job.finished_at is not None
    # Duration math never touches those wall stamps.
    assert job.duration_s == pytest.approx(5.0)
    assert job.finished_at - job.started_at != pytest.approx(5.0)


def test_uptime_follows_the_engine_clock(fake_engine):
    engine, clock = fake_engine
    first = engine.health_payload()["uptime_s"]
    clock.advance(100.0)
    second = engine.health_payload()["uptime_s"]
    assert second - first == pytest.approx(100.0, abs=1e-3)


def test_unfinished_jobs_report_no_duration():
    clock = FakeClock()
    engine = ServiceEngine(n_workers=1, watchdog_interval=0, clock=clock,
                           sleep=clock.sleep)
    try:
        job = engine.submit_spec(_spec("mono-3"))
        # Freshly submitted (possibly already running): never a negative
        # or fabricated duration.
        assert engine.job(job.job_id).duration_s in (None, 0.0)
        payload = engine.job(job.job_id).to_dict()
        assert payload.get("duration_s") in (None, 0.0)
        engine.wait_for(job.job_id, timeout=60)
    finally:
        engine.shutdown()
