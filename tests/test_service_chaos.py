"""Deterministic chaos: breaker transitions on a fake clock, watchdog
worker replacement, and stalled storage that cannot wedge queries.

Marked ``chaos``; run in the CI overload job."""

import time

import pytest

from repro.errors import CircuitOpenError, ServiceTimeout
from repro.service.engine import JobStatus, ServiceEngine
from repro.service.resilience import Deadline
from repro.testing.chaos import FakeClock, StallingFS, StallingHook
from repro.testing.faults import FlakyHook, SimulatedCrash
from repro.vdbms.database import VideoDatabase

pytestmark = pytest.mark.chaos


def _spec(video_id, seed=0):
    return {
        "source": "synthetic",
        "video_id": video_id,
        "n_shots": 2,
        "frames_per_shot": 4,
        "rows": 16,
        "cols": 16,
        "seed": seed,
    }


class TestBreakerLifecycle:
    def test_open_half_open_closed_on_a_fake_clock(self):
        """The full acceptance transition, with no real sleeps."""
        clock = FakeClock()
        hook = FlakyHook(fail_times=2, exc=lambda msg: OSError(msg))
        engine = ServiceEngine(
            n_workers=1,
            watchdog_interval=0,
            max_attempts=1,
            breaker_threshold=2,
            breaker_reset_s=5.0,
            clock=clock,
            sleep=clock.sleep,
            ingest_hook=hook,
        )
        try:
            # Two failing jobs trip the breaker open.
            for k in range(2):
                job = engine.wait_for(
                    engine.submit_spec(_spec(f"sick-{k}", seed=k)).job_id, timeout=60
                )
                assert job.status is JobStatus.QUARANTINED
            assert engine.breaker.state == "open"
            assert engine.breaker.times_opened == 1
            # While open, submission fails fast with a retry hint.
            with pytest.raises(CircuitOpenError) as excinfo:
                engine.submit_spec(_spec("refused"))
            assert excinfo.value.retry_after > 0
            assert engine.metrics.counter("ingest_rejected_breaker") == 1
            # The reset window elapses on the fake clock: half-open.
            clock.advance(5.0)
            assert engine.breaker.state == "half_open"
            # The probe job succeeds (the hook healed): breaker closes.
            job = engine.wait_for(
                engine.submit_spec(_spec("probe")).job_id, timeout=60
            )
            assert job.status is JobStatus.DONE
            assert engine.breaker.state == "closed"
            snapshot = engine.breaker.snapshot()
            assert snapshot["times_opened"] == 1
            assert snapshot["total_successes"] == 1
        finally:
            engine.shutdown()

    def test_accepted_jobs_park_behind_an_open_breaker_then_complete(self):
        """An accepted job is a promise: the worker waits out the open
        window instead of failing the job."""
        clock = FakeClock()
        hook = FlakyHook(fail_times=1, exc=lambda msg: OSError(msg))
        engine = ServiceEngine(
            n_workers=1,
            watchdog_interval=0,
            max_attempts=1,
            breaker_threshold=1,
            breaker_reset_s=2.0,
            clock=clock,
            sleep=clock.sleep,
            ingest_hook=hook,
        )
        try:
            # Both accepted while the breaker is closed; the first
            # trips it open, the second must park at the gate, ride
            # out the (fake-clock) reset window, and complete.
            bad = engine.submit_spec(_spec("bad"))
            good = engine.submit_spec(_spec("good", seed=1))
            assert engine.wait_for(bad.job_id, timeout=60).status is (
                JobStatus.QUARANTINED
            )
            assert engine.wait_for(good.job_id, timeout=60).status is JobStatus.DONE
            assert engine.metrics.counter("ingest_breaker_waits") == 1
            assert engine.breaker.state == "closed"
        finally:
            engine.shutdown()


class TestWatchdog:
    # The injected crash escapes the worker thread by design.
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_crashed_worker_is_replaced(self):
        hook = FlakyHook(fail_times=1, exc=lambda msg: SimulatedCrash(msg))
        engine = ServiceEngine(
            n_workers=1, watchdog_interval=0, max_attempts=3, ingest_hook=hook
        )
        try:
            crashed = engine.wait_for(
                engine.submit_spec(_spec("crash")).job_id, timeout=60
            )
            assert crashed.status is JobStatus.FAILED
            assert "SimulatedCrash" in crashed.error
            assert engine.metrics.counter("worker_crashes") == 1
            # The worker thread died; a manual sweep replaces it.
            deadline = time.monotonic() + 5
            while engine.check_workers()["replaced"] == 0:
                assert time.monotonic() < deadline, "dead worker never detected"
                time.sleep(0.01)
            assert engine.metrics.counter("workers_replaced") == 1
            # The replacement actually serves.
            healed = engine.wait_for(
                engine.submit_spec(_spec("after", seed=1)).job_id, timeout=60
            )
            assert healed.status is JobStatus.DONE
        finally:
            engine.shutdown()

    def test_stuck_worker_is_supplemented_once(self):
        clock = FakeClock()
        hook = StallingHook(max_stall_s=30)
        engine = ServiceEngine(
            n_workers=1,
            watchdog_interval=0,
            stall_timeout=10.0,
            clock=clock,
            ingest_hook=hook,
        )
        try:
            engine.submit_spec(_spec("wedged"))
            assert hook.entered.wait(10), "worker never picked up the job"
            # Within the stall budget: nothing happens.
            assert engine.check_workers() == {"replaced": 0, "supplemented": 0}
            clock.advance(11.0)
            assert engine.check_workers()["supplemented"] == 1
            # One incident, one supplement — sweeps do not pile up.
            assert engine.check_workers()["supplemented"] == 0
            assert engine.metrics.counter("workers_supplemented") == 1
            # Release the wedge: with the supplement on board, new work
            # flows again (capacity was restored, not just counted).
            hook.release()
            done = engine.wait_for(
                engine.submit_spec(_spec("served", seed=1)).job_id, timeout=60
            )
            assert done.status is JobStatus.DONE
        finally:
            hook.release()
            engine.shutdown()


class TestStalledStorage:
    def test_stalled_publish_cannot_wedge_deadline_queries(self, tmp_path):
        """A hung storage backend holds the write lock mid-publish; a
        query carrying a deadline must time out within its budget
        instead of hanging behind it."""
        fs = StallingFS(max_stall_s=30)
        db = VideoDatabase.open(tmp_path / "db", fs=fs)
        engine = ServiceEngine(db=db, n_workers=1, watchdog_interval=0)
        try:
            fs.stall()
            job = engine.submit_spec(_spec("stuck"))
            assert fs.entered.wait(10), "publish never reached storage"
            # The publish is now wedged inside the write lock.
            started = time.perf_counter()
            with pytest.raises(ServiceTimeout):
                engine.query(1.0, 1.0, deadline=Deadline(0.1))
            elapsed = time.perf_counter() - started
            assert elapsed < 5.0, "query was not bounded by its deadline"
            # A deadline-free cached path still answers: health stays up.
            assert engine.health_payload()["ready"]
            fs.release()
            finished = engine.wait_for(job.job_id, timeout=60)
            assert finished.status is JobStatus.DONE
            # Storage healed: queries flow again.
            payload, _ = engine.query(1.0, 1.0, deadline=Deadline(5.0))
            assert "matches" in payload
        finally:
            fs.release()
            engine.shutdown()
