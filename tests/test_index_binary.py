"""The binary index format (RVIX): roundtrip, determinism, corruption
detection, JSON auto-migration, fsck, and crash-atomic saves.

The columnar index persists as a checksummed little-endian column
file.  These tests pin the format contract: a byte-identical rewrite
of an unchanged index (so the publish layer's content dedup still
works), detection — not silent service — of any truncation or bit
flip, transparent reads of the older JSON documents with migration to
binary on the next save, and all-or-nothing saves at every filesystem
kill point.
"""

from __future__ import annotations

import itertools
import json

import numpy as np
import pytest

from repro.errors import IndexError_, StorageError, StorageIntegrityError
from repro.features.vector import FeatureVector
from repro.index import ColumnarVarianceIndex, IndexEntry, SortedVarianceIndex
from repro.index.columnar import COLUMNAR_MAGIC
from repro.index.query import VarianceQuery
from repro.testing import sweep_kill_points, synth_database
from repro.vdbms.database import VideoDatabase
from repro.vdbms.storage import DatabaseStorage

_DIR_COUNTER = itertools.count(1)


def _entries(seed: int, n: int = 60) -> list[IndexEntry]:
    rng = np.random.default_rng(seed)
    videos = ["clip-α", "clip-β", "a/b c", "plain"]
    archetypes = [None, "closeup", "wide-shot", "über-shot"]
    return [
        IndexEntry(
            video_id=videos[k % len(videos)],
            shot_number=k,
            start_frame=k * 24,
            end_frame=k * 24 + 23,
            features=FeatureVector(
                var_ba=float(rng.uniform(0, 500)), var_oa=float(rng.uniform(0, 500))
            ),
            archetype=archetypes[k % len(archetypes)],
        )
        for k in range(n)
    ]


class TestRoundtrip:
    def test_bytes_roundtrip_preserves_entries_and_decisions(self):
        index = ColumnarVarianceIndex(_entries(1))
        data = index.to_bytes()
        assert data.startswith(COLUMNAR_MAGIC)
        reloaded = ColumnarVarianceIndex.from_bytes(data)
        assert [e.to_row() for e in reloaded.entries] == [
            e.to_row() for e in index.entries
        ]
        assert [e.archetype for e in reloaded.entries] == [
            e.archetype for e in index.entries
        ]
        query = VarianceQuery(var_ba=144.0, var_oa=64.0)
        assert [(e.video_id, e.shot_number) for e in reloaded.search(query)] == [
            (e.video_id, e.shot_number) for e in index.search(query)
        ]

    def test_to_bytes_is_deterministic(self, tmp_path):
        index = ColumnarVarianceIndex(_entries(2))
        data = index.to_bytes()
        assert index.to_bytes() == data
        # save -> load -> save is byte-identical: the intern tables are
        # compacted to first-appearance order on every serialization,
        # so an unchanged index dedups to a no-op at the publish layer.
        path = index.save(tmp_path / "index.bin")
        reloaded = ColumnarVarianceIndex.load(path)
        assert reloaded.to_bytes() == data
        reloaded.save(tmp_path / "again.bin")
        assert (tmp_path / "again.bin").read_bytes() == data

    def test_empty_index_roundtrip(self):
        data = ColumnarVarianceIndex().to_bytes()
        reloaded = ColumnarVarianceIndex.from_bytes(data)
        assert len(reloaded) == 0
        assert reloaded.entries == ()

    def test_pending_rows_included_in_serialization(self):
        index = ColumnarVarianceIndex(merge_threshold=1_000)
        for entry in _entries(3, n=10):
            index.insert(entry)
        reloaded = ColumnarVarianceIndex.from_bytes(index.to_bytes())
        assert len(reloaded) == 10


class TestCorruptionDetection:
    def test_truncation_is_detected_at_every_boundary(self):
        data = ColumnarVarianceIndex(_entries(4)).to_bytes()
        for cut in (0, 3, len(data) // 4, len(data) // 2, len(data) - 1):
            with pytest.raises(IndexError_):
                ColumnarVarianceIndex.from_bytes(data[:cut])
        with pytest.raises(IndexError_):
            ColumnarVarianceIndex.from_bytes(data + b"\x00")

    def test_bit_flips_are_detected_everywhere(self):
        data = ColumnarVarianceIndex(_entries(5, n=20)).to_bytes()
        # Header, string tables, each column region, and the digest
        # trailer itself — a flip anywhere must raise, never serve.
        for offset in range(4, len(data), max(1, len(data) // 37)):
            corrupted = bytearray(data)
            corrupted[offset] ^= 0x40
            with pytest.raises(IndexError_):
                ColumnarVarianceIndex.from_bytes(bytes(corrupted))

    def test_wrong_magic_and_garbage_payloads(self):
        with pytest.raises(IndexError_):
            ColumnarVarianceIndex.from_bytes(b"NOPE" + b"\x00" * 64)
        with pytest.raises(IndexError_, match="unreadable index payload"):
            ColumnarVarianceIndex.from_payload_bytes(b"\x01\x02 not json")

    def test_validate_bytes_accepts_good_rejects_bad(self):
        data = ColumnarVarianceIndex(_entries(6, n=8)).to_bytes()
        ColumnarVarianceIndex.validate_bytes(data)
        with pytest.raises(IndexError_):
            ColumnarVarianceIndex.validate_bytes(data[:-1])

    def test_json_payload_still_readable(self):
        index = ColumnarVarianceIndex(_entries(7, n=12))
        payload = json.dumps(index.to_dict()).encode("utf-8")
        reloaded = ColumnarVarianceIndex.from_payload_bytes(payload)
        assert [e.to_row() for e in reloaded.entries] == [
            e.to_row() for e in index.entries
        ]


class TestMigration:
    def test_legacy_bare_json_migrates_to_binary_on_save(self, tmp_path):
        db = synth_database(11, n_videos=2)
        root = tmp_path / "legacy"
        storage = DatabaseStorage(root)
        storage.initialize()
        from repro.scenetree.serialize import scene_tree_to_dict

        storage.catalog_path.write_text(json.dumps(db.catalog.to_dict()))
        storage.index_path.write_text(json.dumps(db.index.to_dict()))
        for vid, tree in db.trees.items():
            storage.tree_path(vid).write_text(json.dumps(scene_tree_to_dict(tree)))

        loaded = VideoDatabase.load(root)
        assert len(loaded.index) == len(db.index)
        loaded.save(root)
        binaries = sorted(root.glob("index-g*.bin"))
        assert binaries, "first save after migration must produce a binary index"
        assert not list(root.glob("index-g*.json"))
        again = VideoDatabase.load(root)
        assert [e.to_row() for e in again.index.entries] == [
            e.to_row() for e in loaded.index.entries
        ]

    def test_manifest_tracked_json_payload_migrates(self, tmp_path):
        root = tmp_path / "db"
        db = synth_database(12, n_videos=2)
        db.save(root)
        storage = DatabaseStorage(root)
        # Rewrite the index record as the pre-binary JSON document, the
        # way an older build would have left it.
        storage._publish_single("index", db.index.to_dict())
        manifest = storage.read_manifest()
        assert manifest.files["index"].path.endswith(".json")

        loaded = VideoDatabase.load(root)
        assert len(loaded.index) == len(db.index)
        loaded.save(root)
        manifest = storage.read_manifest()
        assert manifest.files["index"].path.endswith(".bin")
        assert len(VideoDatabase.load(root).index) == len(db.index)

    def test_save_load_cycle_keeps_binary_format(self, tmp_path):
        root = tmp_path / "db"
        synth_database(13, n_videos=2).save(root)
        manifest = DatabaseStorage(root).read_manifest()
        record = manifest.files["index"]
        assert record.path.endswith(".bin")
        ColumnarVarianceIndex.validate_bytes((root / record.path).read_bytes())


class TestFsckOnBinary:
    def test_clean_database_passes(self, tmp_path):
        root = tmp_path / "db"
        synth_database(14, n_videos=2).save(root)
        report = DatabaseStorage(root).fsck()
        assert report.clean
        assert any(c.logical == "index" and c.path.endswith(".bin") for c in report.checks)

    def test_flipped_byte_in_binary_index_is_caught(self, tmp_path):
        root = tmp_path / "db"
        synth_database(15, n_videos=2).save(root)
        storage = DatabaseStorage(root)
        path = root / storage.read_manifest().files["index"].path
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        report = storage.fsck()
        assert not report.clean
        statuses = {c.status for c in report.problems()}
        assert "checksum-mismatch" in statuses
        with pytest.raises((StorageError, StorageIntegrityError)):
            VideoDatabase.load(root)


@pytest.mark.faults
class TestSaveKillPoints:
    """Both index save paths are all-or-nothing at every kill point."""

    def _sweep(self, tmp_path, index_cls, suffix, detect_corrupt):
        small = _entries(21, n=6)
        big = _entries(21, n=24)

        def setup():
            root = tmp_path / f"sweep-{next(_DIR_COUNTER)}"
            root.mkdir()
            path = root / f"index{suffix}"
            index_cls(small).save(path)
            return {"path": path}

        def operation(ctx, fs):
            index_cls(big).save(ctx["path"], fs=fs)

        def classify(ctx, mode):
            path = ctx["path"]
            assert path.exists(), f"{mode} fault lost the index file"
            if suffix == ".bin":
                try:
                    loaded = ColumnarVarianceIndex.load(path)
                except IndexError_:
                    assert mode == "corrupt", f"{mode} produced unreadable index"
                    return "detected"
            else:
                loaded = SortedVarianceIndex.from_dict(
                    json.loads(path.read_text(encoding="utf-8"))
                )
            if len(loaded) == len(small):
                return "pre"
            if len(loaded) == len(big):
                return "post"
            raise AssertionError(f"torn index after {mode}: {len(loaded)} entries")

        modes = ("crash", "torn", "corrupt") if detect_corrupt else ("crash", "torn")
        report = sweep_kill_points(setup, operation, classify, modes=modes)
        assert report.points, "sweep recorded no filesystem operations"
        states = report.states()
        assert "pre" in states and "post" in states
        if detect_corrupt:
            assert any(r.state == "detected" for r in report.by_mode("corrupt"))
        for mode in ("crash", "torn"):
            for run in report.by_mode(mode):
                assert run.state in ("pre", "post")

    def test_columnar_binary_save_is_atomic(self, tmp_path):
        # The checksum trailer turns a silently flipped byte into a
        # load-time detection, so all three fault modes are swept.
        self._sweep(tmp_path, ColumnarVarianceIndex, ".bin", detect_corrupt=True)

    def test_legacy_json_save_is_atomic(self, tmp_path):
        # JSON has no checksum: a flipped byte may still parse, so only
        # the crash/torn modes carry an atomicity guarantee.
        self._sweep(tmp_path, SortedVarianceIndex, ".json", detect_corrupt=False)
