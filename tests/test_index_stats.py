"""Tests for index statistics (repro.index.stats)."""

import pytest

from repro.config import QueryConfig
from repro.errors import IndexError_
from repro.features.vector import FeatureVector
from repro.index.stats import compute_index_statistics
from repro.index.table import IndexEntry


def _entry(video="v", number=1, var_ba=4.0, var_oa=1.0):
    return IndexEntry(
        video_id=video,
        shot_number=number,
        start_frame=1,
        end_frame=10,
        features=FeatureVector(var_ba=var_ba, var_oa=var_oa),
    )


class TestIndexStatistics:
    def test_counts(self):
        entries = [_entry("a", k) for k in range(1, 4)] + [_entry("b", 1)]
        stats = compute_index_statistics(entries)
        assert stats.n_entries == 4
        assert stats.n_videos == 2
        assert stats.entries_per_video == {"a": 3, "b": 1}

    def test_percentiles_ordered(self):
        entries = [_entry(number=k, var_ba=float(k * k)) for k in range(1, 20)]
        stats = compute_index_statistics(entries)
        assert list(stats.d_v_percentiles) == sorted(stats.d_v_percentiles)
        assert list(stats.sqrt_var_ba_percentiles) == sorted(
            stats.sqrt_var_ba_percentiles
        )

    def test_identical_entries_max_occupancy(self):
        entries = [_entry(number=k) for k in range(1, 6)]
        stats = compute_index_statistics(entries)
        assert stats.mean_box_occupancy == pytest.approx(5.0)

    def test_spread_entries_low_occupancy(self):
        entries = [
            _entry(number=k, var_ba=float((10 * k) ** 2)) for k in range(1, 6)
        ]
        stats = compute_index_statistics(entries)
        assert stats.mean_box_occupancy == pytest.approx(1.0)

    def test_histogram_totals_match(self):
        entries = [_entry(number=k, var_ba=float(k)) for k in range(1, 30)]
        stats = compute_index_statistics(entries)
        assert sum(stats.histogram.values()) == 29

    def test_custom_config_changes_cells(self):
        entries = [_entry(number=k, var_ba=float(k)) for k in range(1, 30)]
        fine = compute_index_statistics(entries, QueryConfig(alpha=0.25, beta=0.25))
        coarse = compute_index_statistics(entries, QueryConfig(alpha=4.0, beta=4.0))
        assert len(fine.histogram) >= len(coarse.histogram)

    def test_to_rows(self):
        stats = compute_index_statistics([_entry()])
        rows = stats.to_rows()
        assert len(rows) == 5
        assert rows[0]["percentile"] == 0

    def test_empty_rejected(self):
        with pytest.raises(IndexError_):
            compute_index_statistics([])

    def test_on_real_detection(self, figure5_detection):
        from repro.index.table import IndexTable

        table = IndexTable()
        table.add_detection_result(figure5_detection, video_id="f5")
        stats = compute_index_statistics(table)
        assert stats.n_entries == 10
        # The 7 static shots cluster: a typical box holds several shots.
        assert stats.mean_box_occupancy >= 3.0
