"""Tracing under duress: shed and refused requests still trace fully.

The overload contract (docs/SERVICE.md) says a saturated server sheds
load with 429 and a tripped breaker refuses ingest with 503 — these
tests pin that the *observability* contract holds at the same time:
every shed or refused request leaves a complete, settled trace in
``/debug/traces`` carrying a ``rejected`` annotation naming the
reason, so an operator can see exactly what the server was refusing
and why during an incident.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro.obs import iter_spans, unsettled_spans
from repro.service.engine import ServiceEngine
from repro.service.server import create_server
from repro.testing.chaos import FakeClock, StallingHook, run_overload_burst

pytestmark = [pytest.mark.chaos, pytest.mark.obs]


@contextmanager
def _serve(engine):
    server = create_server(engine)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        engine.shutdown()


def _get(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def _post(url: str, body: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def _rejected_traces(base_url: str) -> list[dict]:
    status, debug = _get(base_url + "/debug/traces")
    assert status == 200
    return [
        doc
        for doc in debug["traces"]
        if "rejected" in doc["root"].get("annotations", {})
    ]


def test_shed_requests_trace_completely_under_burst():
    """429s produced by a saturated queue still settle full traces."""
    hook = StallingHook()
    engine = ServiceEngine(
        n_workers=1,
        max_queue=1,
        watchdog_interval=0,
        ingest_hook=hook,
        trace_capacity=256,
    )
    try:
        with _serve(engine) as base_url:
            # Wedge the single worker so the burst saturates instantly.
            status, payload = _post(
                base_url + "/ingest",
                {"source": "synthetic", "video_id": "wedge", "n_shots": 2,
                 "frames_per_shot": 4, "rows": 16, "cols": 16},
            )
            assert status == 202
            assert hook.entered.wait(timeout=30)

            burst = run_overload_burst(base_url, 8, workers=4, seed=17)
            assert burst["server_errors"] == 0, burst
            assert burst["rejected_429"] >= 1, burst

            rejected = _rejected_traces(base_url)
            assert len(rejected) >= burst["rejected_429"]
            for doc in rejected:
                ann = doc["root"]["annotations"]
                assert ann["rejected"] == "overloaded"
                assert ann["status"] == 429
                assert ann["route"] == "POST /ingest"
                assert unsettled_spans(doc) == []
                assert doc["n_spans"] == sum(1 for _ in iter_spans(doc))

            hook.release()
            engine.drain(timeout=60)
    finally:
        hook.release()


def test_tripped_breaker_refusals_trace_with_circuit_open():
    """An open breaker's 503s carry rejected=circuit_open traces."""
    clock = FakeClock()
    engine = ServiceEngine(
        n_workers=1,
        watchdog_interval=0,
        breaker_threshold=2,
        breaker_reset_s=60.0,
        clock=clock,
        sleep=clock.sleep,
        trace_capacity=64,
    )
    with _serve(engine) as base_url:
        for _ in range(2):
            engine.breaker.record_failure()
        assert not engine.breaker.admits()

        status, payload = _post(
            base_url + "/ingest",
            {"source": "synthetic", "video_id": "refused", "n_shots": 2,
             "frames_per_shot": 4, "rows": 16, "cols": 16},
        )
        assert status == 503
        assert payload["reason"] == "circuit_open"

        rejected = _rejected_traces(base_url)
        assert len(rejected) == 1
        doc = rejected[0]
        ann = doc["root"]["annotations"]
        assert ann["rejected"] == "circuit_open"
        assert ann["status"] == 503
        assert unsettled_spans(doc) == []
