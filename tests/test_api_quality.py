"""API-quality gates: documentation and export hygiene.

These tests walk the installed package and enforce the conventions the
rest of the repository promises: every public module, class, and
function carries a docstring, and every name a package re-exports in
``__all__`` actually resolves.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

EXPECTED_PACKAGES = {
    "repro.geometry", "repro.pyramid", "repro.signature", "repro.sbd",
    "repro.scenetree", "repro.features", "repro.index", "repro.vdbms",
    "repro.video", "repro.synth", "repro.workloads", "repro.baselines",
    "repro.eval", "repro.experiments",
}


def _walk_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        modules.append(importlib.import_module(info.name))
    return modules


ALL_MODULES = _walk_modules()


class TestModuleDocumentation:
    def test_every_module_has_docstring(self):
        undocumented = [
            module.__name__
            for module in ALL_MODULES
            if not (module.__doc__ and module.__doc__.strip())
        ]
        assert undocumented == []

    def test_expected_packages_present(self):
        names = {module.__name__ for module in ALL_MODULES}
        assert EXPECTED_PACKAGES <= names


class TestPublicItemDocumentation:
    def _public_items(self):
        for module in ALL_MODULES:
            for name in getattr(module, "__all__", []):
                item = getattr(module, name, None)
                if inspect.isclass(item) or inspect.isfunction(item):
                    # Attribute the item to its defining module only,
                    # so re-exports are not double-counted.
                    if getattr(item, "__module__", None) == module.__name__:
                        yield module.__name__, name, item

    def test_every_public_item_has_docstring(self):
        undocumented = [
            f"{module}.{name}"
            for module, name, item in self._public_items()
            if not (item.__doc__ and item.__doc__.strip())
        ]
        assert undocumented == []

    def test_public_classes_document_their_methods(self):
        undocumented = []
        for module, name, item in self._public_items():
            if not inspect.isclass(item):
                continue
            for method_name, method in vars(item).items():
                if method_name.startswith("_"):
                    continue
                if inspect.isfunction(method) and not (
                    method.__doc__ and method.__doc__.strip()
                ):
                    undocumented.append(f"{module}.{name}.{method_name}")
        assert undocumented == []


class TestExportHygiene:
    def test_all_exports_resolve(self):
        broken = []
        for module in ALL_MODULES:
            for name in getattr(module, "__all__", []):
                if not hasattr(module, name):
                    broken.append(f"{module.__name__}.{name}")
        assert broken == []

    def test_no_duplicate_exports(self):
        for module in ALL_MODULES:
            exports = list(getattr(module, "__all__", []))
            assert len(exports) == len(set(exports)), module.__name__

    def test_top_level_api_surface(self):
        for name in ("VideoDatabase", "CameraTrackingDetector",
                     "SceneTreeBuilder", "VarianceQuery", "VideoClip"):
            assert hasattr(repro, name)
