"""Integration tests for the HTTP service: endpoints, concurrency,
cache invalidation under live traffic, and the loadgen round trip."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.engine import ServiceEngine
from repro.service.loadgen import LoadgenConfig, run_loadgen
from repro.service.server import create_server


def _request(base_url, method, path, body=None, timeout=30.0):
    """Returns (status, payload) without raising on 4xx/5xx."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        base_url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def _synthetic_spec(video_id, seed=0, n_shots=3):
    return {
        "source": "synthetic",
        "video_id": video_id,
        "n_shots": n_shots,
        "frames_per_shot": 6,
        "seed": seed,
    }


@pytest.fixture(scope="module")
def service():
    """A live server seeded with one synthetic clip."""
    engine = ServiceEngine(n_workers=2, cache_capacity=128)
    engine.wait_for(engine.submit_spec(_synthetic_spec("seed-clip", seed=9)).job_id, 60)
    server = create_server(engine)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield engine, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    engine.shutdown()


class TestEndpoints:
    def test_health(self, service):
        _, base_url = service
        status, payload = _request(base_url, "GET", "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["videos"] >= 1
        assert payload["indexed_shots"] >= 3

    def test_catalog_and_shots_and_tree(self, service):
        _, base_url = service
        status, catalog = _request(base_url, "GET", "/videos")
        assert status == 200
        assert any(v["video_id"] == "seed-clip" for v in catalog["videos"])
        status, shots = _request(base_url, "GET", "/videos/seed-clip/shots")
        assert status == 200
        assert shots["count"] == 3
        assert shots["shots"][0]["shot"].startswith("#1@")
        status, tree = _request(base_url, "GET", "/videos/seed-clip/tree")
        assert status == 200
        assert tree["n_shots"] == 3 and tree["height"] >= 1

    def test_query_get_and_post_agree(self, service):
        _, base_url = service
        status, via_post = _request(
            base_url, "POST", "/query",
            {"var_ba": 0.0, "var_oa": 0.0, "alpha": 1e6, "beta": 1e6},
        )
        assert status == 200
        status, via_get = _request(
            base_url, "GET", "/query?var_ba=0&var_oa=0&alpha=1e6&beta=1e6"
        )
        assert status == 200
        assert via_get["matches"] == via_post["matches"]
        assert via_post["count"] == len(via_post["matches"])

    def test_unknown_video_is_404(self, service):
        _, base_url = service
        for leaf in ("shots", "tree"):
            status, payload = _request(base_url, "GET", f"/videos/nope/{leaf}")
            assert status == 404
            assert "nope" in payload["error"]

    def test_unknown_route_is_404(self, service):
        _, base_url = service
        status, _ = _request(base_url, "GET", "/frobnicate")
        assert status == 404

    def test_bad_query_is_400(self, service):
        _, base_url = service
        status, payload = _request(base_url, "POST", "/query", {"var_ba": 1.0})
        assert status == 400 and "var_oa" in payload["error"]
        status, _ = _request(base_url, "GET", "/query?var_ba=x&var_oa=1")
        assert status == 400
        status, _ = _request(base_url, "POST", "/query", {"var_ba": -1, "var_oa": 0})
        assert status == 400  # QueryError from the model layer

    def test_bad_ingest_is_400_and_unknown_job_404(self, service):
        _, base_url = service
        status, _ = _request(base_url, "POST", "/ingest", {"source": "webcam"})
        assert status == 400
        status, _ = _request(base_url, "GET", "/jobs/job-12345")
        assert status == 404

    def test_metrics_structure(self, service):
        _, base_url = service
        _request(base_url, "GET", "/health")
        status, metrics = _request(base_url, "GET", "/metrics")
        assert status == 200
        health = metrics["requests"]["GET /health"]
        assert health["count"] >= 1
        assert health["latency"]["count"] == health["count"]
        assert health["latency"]["p50_ms"] <= health["latency"]["p99_ms"]
        assert set(metrics["query_cache"]) >= {"hits", "misses", "hit_rate"}


class TestConcurrentIngestAndQuery:
    def test_queries_stay_consistent_while_ingest_commits(self, service):
        """Readers under live ingest see either the old or the new corpus,
        never a torn in-between, and the cache refreshes post-ingest."""
        engine, base_url = service
        query = {"var_ba": 0.0, "var_oa": 0.0, "alpha": 1e9, "beta": 1e9}
        status, before = _request(base_url, "POST", "/query", query)
        assert status == 200
        base_count = before["count"]
        new_shots = 4

        results = []
        errors = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                try:
                    status, payload = _request(base_url, "POST", "/query", query)
                except Exception as exc:  # noqa: BLE001 - collected for assert
                    errors.append(repr(exc))
                    return
                if status != 200:
                    errors.append(f"status {status}: {payload}")
                    return
                results.append(payload)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        status, submitted = _request(
            base_url, "POST", "/ingest",
            _synthetic_spec("concurrent-clip", seed=11, n_shots=new_shots),
        )
        assert status == 202
        job_id = submitted["job_id"]
        deadline_payload = None
        for _ in range(600):
            _, deadline_payload = _request(base_url, "GET", f"/jobs/{job_id}")
            if deadline_payload["status"] in ("done", "failed"):
                break
            threading.Event().wait(0.02)
        stop.set()
        for t in threads:
            t.join(timeout=30)
        assert deadline_payload["status"] == "done", deadline_payload

        assert not errors, errors
        assert results
        observed_counts = {payload["count"] for payload in results}
        # Atomic publish: only the pre- and post-ingest corpus sizes are
        # ever observable, never a partially-registered video.
        assert observed_counts <= {base_count, base_count + new_shots}
        for payload in results:
            assert payload["count"] == len(payload["matches"]) == len(payload["routes"])

        # The cache was invalidated by the commit: the same query now
        # reports the new shots (served fresh, then cached again).
        status, after = _request(base_url, "POST", "/query", query)
        assert status == 200
        assert after["count"] == base_count + new_shots
        assert any(
            match["video_id"] == "concurrent-clip" for match in after["matches"]
        )
        assert engine.cache.stats()["invalidations"] >= 1


class TestLoadgenRoundTrip:
    def test_mixed_workload_zero_failures(self, service):
        _, base_url = service
        report = run_loadgen(
            LoadgenConfig(
                base_url=base_url,
                n_requests=80,
                workers=3,
                ingests=1,
                query_pool=6,
                seed=21,
            )
        )
        assert report["failed_requests"] == 0
        assert report["ingest_failures"] == []
        assert report["total_requests"] >= 80
        assert report["throughput_rps"] > 0
        ops = report["operations"]
        assert {"query", "catalog", "ingest_submit", "job_poll"} <= set(ops)
        for stats in ops.values():
            assert stats["p50_ms"] <= stats["p90_ms"] <= stats["p99_ms"] <= stats["max_ms"]
        cache = report["server_metrics"]["query_cache"]
        assert cache["hits"] > 0  # the pooled query points repeated
        assert report["server_metrics"]["requests"]["POST /query"]["count"] > 0
