"""Tests for the baseline detectors/indexes (repro.baselines)."""

import numpy as np
import pytest

from repro.baselines.base import BaselineResult, BoundaryDetector
from repro.baselines.ecr import EdgeChangeRatioSBD, edge_change_ratios, sobel_edges
from repro.baselines.histogram import HistogramSBD, histogram_differences
from repro.baselines.keyframe import KeyframeHistogramIndex
from repro.baselines.pairwise import PairwisePixelSBD, changed_pixel_fractions
from repro.baselines.timetree import build_time_tree
from repro.errors import IndexError_, QueryError, SceneTreeError
from repro.sbd.shots import Shot
from repro.video.clip import VideoClip


def _cut_clip(n_segments=3, seg_len=6, rows=40, cols=48):
    levels = [40, 130, 220, 90, 180]
    frames = np.concatenate(
        [
            np.full((seg_len, rows, cols, 3), levels[k % 5], dtype=np.uint8)
            for k in range(n_segments)
        ]
    )
    rng = np.random.default_rng(3)
    noisy = np.clip(
        frames.astype(np.int16) + rng.integers(-3, 4, frames.shape), 0, 255
    ).astype(np.uint8)
    return VideoClip("cuts", noisy, fps=3.0)


def _textured_cut_clip():
    """Two textured scenes (edges present) joined by a hard cut."""
    rng = np.random.default_rng(5)
    def scene(seed):
        base = np.zeros((40, 48, 3), dtype=np.uint8)
        r = np.random.default_rng(seed)
        for _ in range(12):
            y, x = r.integers(0, 30), r.integers(0, 38)
            base[y : y + 8, x : x + 8] = r.integers(30, 220, size=3)
        return base
    a, b = scene(1), scene(2)
    frames = np.stack([a] * 6 + [b] * 6)
    noisy = np.clip(
        frames.astype(np.int16) + rng.integers(-2, 3, frames.shape), 0, 255
    ).astype(np.uint8)
    return VideoClip("textured", noisy, fps=3.0)


class TestBaselineResult:
    def test_shots_materialization(self):
        result = BaselineResult("c", (4, 8), "x")
        shots = result.shots(12)
        assert [(s.start, s.stop) for s in shots] == [(0, 4), (4, 8), (8, 12)]


class TestHistogramSBD:
    def test_detects_hard_cuts(self):
        clip = _cut_clip()
        result = HistogramSBD().detect_boundaries(clip)
        assert set(result.boundaries) == {6, 12}

    def test_is_boundary_detector(self):
        assert isinstance(HistogramSBD(), BoundaryDetector)

    def test_differences_in_unit_range(self):
        diffs = histogram_differences(_cut_clip().frames)
        assert np.all(diffs >= 0) and np.all(diffs <= 1)

    def test_uniform_clip_no_boundaries(self):
        frames = np.full((10, 20, 20, 3), 128, dtype=np.uint8)
        result = HistogramSBD().detect_boundaries(VideoClip("flat", frames))
        assert result.boundaries == ()

    def test_threshold_sensitivity(self):
        """The Sec. 1 complaint: results swing with the thresholds.

        Out-of-reach thresholds find nothing; hair-trigger thresholds
        fire on sensor noise; the defaults find exactly the two cuts.
        """
        clip = _cut_clip()
        strict = HistogramSBD(
            cut_threshold=1.5, low_threshold=1.2, accumulation_threshold=10.0
        )
        lax = HistogramSBD(cut_threshold=0.004, low_threshold=0.002)
        assert len(strict.detect_boundaries(clip).boundaries) == 0
        assert len(lax.detect_boundaries(clip).boundaries) > 2
        assert len(HistogramSBD().detect_boundaries(clip).boundaries) == 2

    def test_gradual_accumulation_fires(self):
        """A dissolve crosses the low threshold repeatedly."""
        a = np.full((6, 30, 30, 3), 30, dtype=np.uint8)
        b = np.full((6, 30, 30, 3), 220, dtype=np.uint8)
        ramp = np.stack(
            [
                (30 + (220 - 30) * t / 7 * np.ones((30, 30, 3))).astype(np.uint8)
                for t in range(1, 7)
            ]
        )
        clip = VideoClip("dissolve", np.concatenate([a, ramp, b]))
        detector = HistogramSBD(
            cut_threshold=0.9, low_threshold=0.05, accumulation_threshold=0.3
        )
        assert len(detector.detect_boundaries(clip).boundaries) >= 1

    def test_rejects_bad_thresholds(self):
        with pytest.raises(QueryError):
            HistogramSBD(cut_threshold=0.1, low_threshold=0.2)
        with pytest.raises(QueryError):
            HistogramSBD(bins=1)


class TestPairwiseSBD:
    def test_detects_hard_cuts(self):
        result = PairwisePixelSBD().detect_boundaries(_cut_clip())
        assert set(result.boundaries) == {6, 12}

    def test_fractions_bounded(self):
        fractions = changed_pixel_fractions(_cut_clip().frames, 30.0)
        assert np.all((fractions >= 0) & (fractions <= 1))

    def test_motion_sensitivity_false_positive(self):
        """Pairwise pixels misfire on large object motion — the weakness
        the camera-tracking method avoids."""
        frames = np.full((8, 40, 48, 3), 200, dtype=np.uint8)
        for k in range(8):
            frames[k, 10:35, k * 5 : k * 5 + 12] = 20  # big moving block
        clip = VideoClip("motion", frames)
        result = PairwisePixelSBD(frame_threshold=0.10).detect_boundaries(clip)
        assert len(result.boundaries) > 0  # false alarms on one shot

    def test_rejects_bad_params(self):
        with pytest.raises(QueryError):
            PairwisePixelSBD(pixel_threshold=0)
        with pytest.raises(QueryError):
            PairwisePixelSBD(frame_threshold=0)


class TestECRSBD:
    def test_sobel_finds_edges(self):
        gray = np.zeros((1, 20, 20), dtype=np.float32)
        gray[0, :, 10:] = 255.0
        edges = sobel_edges(gray, threshold=100.0)
        assert edges[0, 5, 10] or edges[0, 5, 9]
        assert not edges[0, 5, 2]

    def test_ratios_peak_at_cut(self):
        clip = _textured_cut_clip()
        ratios = edge_change_ratios(clip.frames, 120.0, 2)
        assert ratios[5] == ratios.max()
        assert ratios[5] > 0.2

    def test_detects_textured_cut(self):
        """ECR needs its cut threshold tuned to this material — the
        paper's point about its six thresholds."""
        detector = EdgeChangeRatioSBD(cut_threshold=0.25, gradual_threshold=0.1)
        result = detector.detect_boundaries(_textured_cut_clip())
        assert 6 in result.boundaries

    def test_flat_frames_never_trigger(self):
        """Threshold #6: featureless frames are skipped."""
        frames = np.full((8, 30, 30, 3), 120, dtype=np.uint8)
        frames[4:] = 140  # a small change with no edges anywhere
        result = EdgeChangeRatioSBD().detect_boundaries(VideoClip("flat", frames))
        assert result.boundaries == ()

    def test_six_parameters_validated(self):
        with pytest.raises(QueryError):
            EdgeChangeRatioSBD(edge_threshold=0)
        with pytest.raises(QueryError):
            EdgeChangeRatioSBD(dilation_radius=-1)
        with pytest.raises(QueryError):
            EdgeChangeRatioSBD(cut_threshold=0.2, gradual_threshold=0.3)
        with pytest.raises(QueryError):
            EdgeChangeRatioSBD(gradual_window=0)
        with pytest.raises(QueryError):
            EdgeChangeRatioSBD(min_edge_fraction=1.5)


class TestTimeTree:
    def test_equal_segments(self):
        tree = build_time_tree(16, fanout=4)
        tree.validate()
        assert tree.n_shots == 16
        assert len(tree.root.children) == 4
        for child in tree.root.children:
            assert len(child.children) == 4

    def test_uneven_division(self):
        tree = build_time_tree(10, fanout=4)
        tree.validate()
        assert tree.n_shots == 10

    def test_single_shot(self):
        tree = build_time_tree(1)
        tree.validate()
        assert tree.height == 1

    def test_rejects_bad_args(self):
        with pytest.raises(SceneTreeError):
            build_time_tree(0)
        with pytest.raises(SceneTreeError):
            build_time_tree(5, fanout=1)

    def test_leaves_in_temporal_order(self):
        tree = build_time_tree(9, fanout=3)
        assert [leaf.shot_index for leaf in tree.leaves] == list(range(9))


class TestKeyframeIndex:
    def _index_with_clip(self):
        frames = np.zeros((12, 20, 20, 3), dtype=np.uint8)
        frames[:6] = 40
        frames[6:] = 200
        clip = VideoClip("kf", frames)
        shots = [Shot(0, 0, 6), Shot(1, 6, 12)]
        index = KeyframeHistogramIndex(bins=8)
        index.add_clip(clip, shots, archetypes={0: "dark", 1: "bright"})
        return index

    def test_add_and_search(self):
        index = self._index_with_clip()
        assert len(index) == 2
        probe = index.lookup("kf", 1)
        results = index.search(probe, exclude_shot=("kf", 1))
        assert results[0].shot_number == 2  # the other shot ranks first

    def test_self_is_nearest_without_exclusion(self):
        index = self._index_with_clip()
        probe = index.lookup("kf", 1)
        assert index.search(probe)[0].shot_number == 1

    def test_feature_size_vs_variance_index(self):
        """The cost claim: histograms store 3*bins floats, variance 2."""
        index = KeyframeHistogramIndex(bins=16)
        assert index.floats_per_shot == 48

    def test_lookup_missing(self):
        with pytest.raises(IndexError_):
            self._index_with_clip().lookup("kf", 9)

    def test_search_empty_index(self):
        with pytest.raises(IndexError_):
            KeyframeHistogramIndex().search(np.zeros(48))

    def test_rejects_bad_bins(self):
        with pytest.raises(QueryError):
            KeyframeHistogramIndex(bins=1)
