"""Property-based persistence checks over seeded random databases.

No external property-testing dependency: ``numpy``'s seeded generator
drives ~50 structurally random databases (random video counts, shot
counts, sign streams, awkward ids, optional categories) through the
save → load → save cycle.  The properties:

* persistence is a fixed point — the second save produces byte-for-byte
  identical files for every manifest-tracked component;
* queries answer identically before and after a reload;
* ``_safe_id`` is injective over colliding-by-sanitization ids.
"""

import pytest

from repro.testing import synth_database
from repro.vdbms.storage import DatabaseStorage, _safe_id
from repro.vdbms.database import VideoDatabase

SEEDS = range(50)


def _tracked_bytes(root):
    """logical name -> on-disk bytes for every manifest-tracked file."""
    storage = DatabaseStorage(root)
    manifest = storage.read_manifest()
    return {
        logical: (root / record.path).read_bytes()
        for logical, record in manifest.files.items()
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_save_load_save_is_byte_identical(seed, tmp_path):
    db = synth_database(seed)
    first = tmp_path / "first"
    second = tmp_path / "second"
    db.save(first)
    loaded = VideoDatabase.load(first)
    loaded.save(second)
    assert _tracked_bytes(first) == _tracked_bytes(second)
    # And the manifests agree on generation and records.
    m1 = DatabaseStorage(first).read_manifest()
    m2 = DatabaseStorage(second).read_manifest()
    assert m1.generation == m2.generation == 1
    assert m1.files == m2.files


@pytest.mark.parametrize("seed", [0, 7, 13, 21, 34])
def test_queries_identical_after_reload(seed, tmp_path):
    db = synth_database(seed, n_videos=3)
    db.save(tmp_path / "db")
    loaded = VideoDatabase.load(tmp_path / "db")
    probes = [(4.0, 9.0), (50.0, 120.0), (300.0, 10.0)]
    for var_ba, var_oa in probes:
        before = db.query(var_ba, var_oa, limit=10)
        after = loaded.query(var_ba, var_oa, limit=10)
        assert [m.shot_id for m in before.matches] == [
            m.shot_id for m in after.matches
        ]
        assert [r.suggestion for r in before.routes] == [
            r.suggestion for r in after.routes
        ]


def test_saving_a_reloaded_database_in_place_is_a_noop(tmp_path):
    db = synth_database(11, n_videos=2)
    root = tmp_path / "db"
    db.save(root)
    storage = DatabaseStorage(root)
    before = storage.read_manifest()
    VideoDatabase.load(root).save(root)
    after = storage.read_manifest()
    assert after.generation == before.generation
    assert after.files == before.files


class TestSafeIdInjectivity:
    ADVERSARIAL = [
        ("a/b", "a_b"),
        ("a b", "a_b"),
        ("a.b", "a_b"),
        ("x:y", "x_y"),
        ("x*y", "x?y"),
        ("", "_"),
        ("trailing/", "trailing_"),
        ("ünïcode", "u_nicode"),
    ]

    def test_adversarial_pairs_distinct(self):
        for left, right in self.ADVERSARIAL:
            assert _safe_id(left) != _safe_id(right), (left, right)

    def test_random_ids_injective(self):
        import numpy as np

        rng = np.random.default_rng(99)
        alphabet = list("ab_/:. *")
        ids = {
            "".join(rng.choice(alphabet, size=rng.integers(1, 9)))
            for _ in range(400)
        }
        rendered = {_safe_id(video_id) for video_id in ids}
        assert len(rendered) == len(ids)

    def test_stable(self):
        assert _safe_id("a/b") == _safe_id("a/b")
