"""Tests for repro.index (table, queries, sorted index, routing)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import QueryConfig
from repro.errors import IndexError_, QueryError
from repro.features.vector import FeatureVector
from repro.index.query import VarianceQuery, entry_matches, search
from repro.index.routing import route_to_scene_nodes
from repro.index.sorted_index import SortedVarianceIndex
from repro.index.table import IndexEntry, IndexTable
from repro.scenetree.builder import SceneTreeBuilder


def _entry(video="v", number=1, var_ba=4.0, var_oa=1.0, archetype=None):
    return IndexEntry(
        video_id=video,
        shot_number=number,
        start_frame=1,
        end_frame=10,
        features=FeatureVector(var_ba=var_ba, var_oa=var_oa),
        archetype=archetype,
    )


class TestIndexTable:
    def test_add_and_lookup(self):
        table = IndexTable()
        table.add(_entry(number=1))
        table.add(_entry(number=2, var_ba=9.0))
        assert len(table) == 2
        assert table.lookup("v", 2).features.var_ba == 9.0

    def test_lookup_missing(self):
        with pytest.raises(IndexError_):
            IndexTable().lookup("v", 1)

    def test_for_video_sorted_by_shot(self):
        table = IndexTable([_entry(number=3), _entry(number=1), _entry(number=2)])
        numbers = [e.shot_number for e in table.for_video("v")]
        assert numbers == [1, 2, 3]

    def test_for_video_missing(self):
        with pytest.raises(IndexError_):
            IndexTable().for_video("nope")

    def test_add_detection_result(self, figure5_detection):
        table = IndexTable()
        entries = table.add_detection_result(figure5_detection)
        assert len(entries) == figure5_detection.n_shots
        assert entries[0].start_frame == 1
        assert entries[-1].end_frame == 625

    def test_to_rows_table4_columns(self):
        rows = IndexTable([_entry()]).to_rows()
        assert set(rows[0]) == {
            "shot", "start_frame", "end_frame", "var_ba", "var_oa",
            "sqrt_var_ba", "d_v",
        }


class TestVarianceQuery:
    def test_d_v(self):
        query = VarianceQuery(var_ba=16.0, var_oa=9.0)
        assert query.d_v == pytest.approx(1.0)

    def test_from_features(self):
        vector = FeatureVector(var_ba=4.0, var_oa=1.0)
        query = VarianceQuery.from_features(vector)
        assert query.d_v == pytest.approx(vector.d_v)

    def test_rejects_negative(self):
        with pytest.raises(QueryError):
            VarianceQuery(var_ba=-1.0, var_oa=0.0)

    def test_eq7_band(self):
        query = VarianceQuery(var_ba=16.0, var_oa=9.0)  # D=1, sqrtBA=4
        inside = _entry(var_ba=16.0, var_oa=9.0)
        assert entry_matches(inside, query)
        # D^v out of band: entry D = 5-0 = 5, |5-1| > alpha=1.
        out_d = _entry(var_ba=25.0, var_oa=0.0)
        assert not entry_matches(out_d, query)

    def test_eq8_band(self):
        query = VarianceQuery(var_ba=16.0, var_oa=9.0)  # sqrtBA 4, D 1
        # Entry: sqrtBA 36 -> 6 out of the beta=1 band even though D matches.
        out_ba = _entry(var_ba=36.0, var_oa=25.0)  # D = 6-5 = 1 (matches Eq.7)
        assert not entry_matches(out_ba, query)

    def test_boundary_inclusive(self):
        """Eqs. 7-8 are <= inequalities: the band edges match."""
        query = VarianceQuery(var_ba=16.0, var_oa=16.0)  # D=0, sqrtBA=4
        edge = _entry(var_ba=25.0, var_oa=16.0)          # D=1, sqrtBA=5
        assert entry_matches(edge, query, QueryConfig(alpha=1.0, beta=1.0))

    def test_search_ranks_by_distance(self):
        table = IndexTable(
            [
                _entry(number=1, var_ba=16.0, var_oa=9.0),
                _entry(number=2, var_ba=20.25, var_oa=12.25),  # (0.95... )
                _entry(number=3, var_ba=100.0, var_oa=100.0),
            ]
        )
        query = VarianceQuery(var_ba=16.0, var_oa=9.0)
        results = search(table, query)
        assert [e.shot_number for e in results] == [1, 2]

    def test_search_excludes_probe(self):
        table = IndexTable([_entry(number=1), _entry(number=2)])
        query = VarianceQuery(var_ba=4.0, var_oa=1.0)
        results = search(table, query, exclude_shot=("v", 1))
        assert [e.shot_number for e in results] == [2]

    def test_search_limit(self):
        table = IndexTable([_entry(number=k) for k in range(1, 9)])
        query = VarianceQuery(var_ba=4.0, var_oa=1.0)
        assert len(search(table, query, limit=3)) == 3


class TestSortedIndex:
    def test_insert_keeps_order(self):
        index = SortedVarianceIndex()
        for var_ba in (25.0, 1.0, 9.0):
            index.insert(_entry(var_ba=var_ba, var_oa=0.0))
        d_vs = [e.d_v for e in index.entries]
        assert d_vs == sorted(d_vs)

    def test_range_scan(self):
        index = SortedVarianceIndex(
            [_entry(number=k, var_ba=float(k * k), var_oa=0.0) for k in range(1, 7)]
        )
        band = index.range_scan(2.0, 4.0)  # D^v = k for each entry
        assert [e.shot_number for e in band] == [2, 3, 4]

    def test_range_scan_rejects_inverted(self):
        with pytest.raises(IndexError_):
            SortedVarianceIndex().range_scan(3.0, 1.0)

    def test_save_load_round_trip(self, tmp_path):
        index = SortedVarianceIndex(
            [_entry(number=k, var_ba=float(k), archetype="a") for k in range(1, 5)]
        )
        path = index.save(tmp_path / "index.json")
        loaded = SortedVarianceIndex.load(path)
        assert len(loaded) == 4
        assert loaded.entries[0].archetype == "a"

    def test_load_rejects_bad_version(self, tmp_path):
        index = SortedVarianceIndex([_entry()])
        payload = index.to_dict()
        payload["version"] = 0
        with pytest.raises(IndexError_):
            SortedVarianceIndex.from_dict(payload)

    @settings(max_examples=30)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=400),
                st.floats(min_value=0, max_value=400),
            ),
            min_size=1,
            max_size=40,
        ),
        st.floats(min_value=0, max_value=400),
        st.floats(min_value=0, max_value=400),
    )
    def test_property_sorted_search_equals_scan_search(self, vars_, q_ba, q_oa):
        """The sub-linear index answers exactly like the table scan."""
        entries = [
            _entry(number=k + 1, var_ba=ba, var_oa=oa)
            for k, (ba, oa) in enumerate(vars_)
        ]
        table = IndexTable(entries)
        index = SortedVarianceIndex(entries)
        query = VarianceQuery(var_ba=q_ba, var_oa=q_oa)
        via_scan = [(e.video_id, e.shot_number) for e in search(table, query)]
        via_index = [(e.video_id, e.shot_number) for e in index.search(query)]
        assert via_scan == via_index


class TestRouting:
    def test_routes_to_largest_scene(self, figure5_detection):
        tree = SceneTreeBuilder().build_from_detection(figure5_detection)
        table = IndexTable()
        table.add_detection_result(figure5_detection, video_id="figure5")
        matches = [table.lookup("figure5", 1)]
        routes = route_to_scene_nodes(matches, {"figure5": tree})
        assert len(routes) == 1
        node = routes[0].node
        assert node is not None
        # Shot #1's representative frame names EN1 and EN3 in the paper's
        # tree, so the largest scene is at level >= 1.
        assert node.level >= 1
        assert "->" in routes[0].suggestion

    def test_missing_tree_gives_none(self):
        routes = route_to_scene_nodes([_entry()], {})
        assert routes[0].node is None
        assert "<no scene tree>" in routes[0].suggestion


class TestNaNGuard:
    """NaN ``D^v`` keys would silently break the bisect ordering
    invariant; the index must reject them at the boundary instead."""

    def _nan_entry(self):
        # Bypass FeatureVector's __post_init__ range check the same way
        # a buggy feature extractor would: NaN compares False against
        # everything, so ``var < 0`` never fires.
        return _entry(var_ba=float("nan"), var_oa=1.0)

    def test_insert_rejects_nan(self):
        index = SortedVarianceIndex([_entry()])
        with pytest.raises(IndexError_, match="NaN"):
            index.insert(self._nan_entry())
        assert len(index) == 1  # rejected before any mutation

    def test_construction_rejects_nan(self):
        with pytest.raises(IndexError_, match="NaN"):
            SortedVarianceIndex([_entry(), self._nan_entry()])

    def test_from_dict_rejects_nan(self):
        payload = SortedVarianceIndex([_entry()]).to_dict()
        payload["entries"][0]["var_oa"] = float("nan")
        with pytest.raises(IndexError_, match="NaN"):
            SortedVarianceIndex.from_dict(payload)

    def test_range_scan_rejects_nan_bounds(self):
        index = SortedVarianceIndex([_entry()])
        with pytest.raises(IndexError_, match="NaN"):
            index.range_scan(float("nan"), 1.0)
        with pytest.raises(IndexError_, match="NaN"):
            index.range_scan(0.0, float("nan"))
