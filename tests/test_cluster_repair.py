"""Anti-entropy repair and the integrity scrubber, driven by fault injection.

The acceptance round-trip under test: flip bytes in a committed shard
file (manifest untouched — exactly what bit-rot looks like), and the
scrubber detects the digest mismatch, quarantines the evidence, and
re-adopts a fresh copy from a healthy replica, leaving every query
answer unchanged.  Anti-entropy covers the placement half: missing
copies, divergent copies, strays, and the honestly-unrepairable.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro import cli
from repro.cluster import ClusterCoordinator
from repro.cluster.repair import AntiEntropyRepairer, IntegrityScrubber
from repro.service.engine import ServiceEngine
from repro.testing import ShardOutage, inject_bit_rot
from repro.testing.synth import add_synth_video
from repro.vdbms.database import VideoDatabase
from repro.vdbms.manifest import TREE_PREFIX
from repro.vdbms.storage import DatabaseStorage

pytestmark = [pytest.mark.scrub, pytest.mark.faults]


def make_record(video_id: str, seed: int):
    """One synthetic video's derived state, detached for adopt()."""
    scratch = VideoDatabase()
    add_synth_video(scratch, video_id, np.random.default_rng(seed))
    return scratch.export_video(video_id)


def populate(cluster: ClusterCoordinator, n: int, seed0: int = 0) -> list[str]:
    ids = [f"clip-{seed0 + k:03d}" for k in range(n)]
    for k, video_id in enumerate(ids):
        cluster.adopt(make_record(video_id, seed0 + k))
    return ids


def canonical(answer) -> bytes:
    """A byte-exact serialization of everything a client decides on."""
    doc = {
        "matches": [
            [m.video_id, m.shot_number, m.features.var_ba, m.features.var_oa]
            for m in answer.matches
        ],
        "routes": answer.suggestions,
    }
    return json.dumps(doc, sort_keys=True).encode("utf-8")


def shard_dir(root, shard_id: int):
    return root / f"shard-{shard_id:03d}"


class TestAntiEntropy:
    def test_fills_missing_copies_after_factor_change(self):
        cluster = ClusterCoordinator.ephemeral(3, replication=1)
        ids = populate(cluster, 6)
        cluster.set_replication(2)
        report = AntiEntropyRepairer(cluster).run()
        assert report.videos_checked == len(ids)
        assert report.copies_added == len(ids)
        assert report.converged and report.repaired_anything
        for video_id in ids:
            assert set(cluster.holders_of(video_id)) == set(
                cluster.router.shards_for(video_id, 2)
            )
        # A second pass finds nothing left to do.
        second = AntiEntropyRepairer(cluster).run()
        assert not second.repaired_anything

    def test_repairs_divergent_replica_from_primary(self):
        cluster = ClusterCoordinator.ephemeral(3, replication=2)
        [video_id] = populate(cluster, 1)
        primary, replica = cluster.router.shards_for(video_id, 2)
        shard = cluster.shards[replica]
        # Corrupt the replica logically: same id, different derived
        # state (bypassing the coordinator, as a buggy writer would).
        with shard.lock.write_locked():
            shard.db.remove(video_id)
            shard.db.adopt(make_record(video_id, seed=999))
        report = AntiEntropyRepairer(cluster).run()
        assert report.divergent_repaired == 1
        assert report.converged
        primary_entries = cluster.shards[primary].db.index.entries_for(video_id)
        replica_entries = shard.db.index.entries_for(video_id)
        assert [e.features.var_ba for e in replica_entries] == [
            e.features.var_ba for e in primary_entries
        ]

    def test_removes_stray_copies(self):
        cluster = ClusterCoordinator.ephemeral(3, replication=1)
        [video_id] = populate(cluster, 1)
        home = cluster.router.shard_for(video_id)
        stray_id = (home + 1) % 3
        stray = cluster.shards[stray_id]
        with stray.lock.write_locked():
            stray.db.adopt(make_record(video_id, 0))
        cluster.note_copy(video_id, stray_id)
        report = AntiEntropyRepairer(cluster).run()
        assert report.strays_removed == 1
        assert cluster.holders_of(video_id) == (home,)
        assert video_id not in stray.db.catalog

    def test_reports_unrepairable_when_no_healthy_source(self):
        cluster = ClusterCoordinator.ephemeral(2, replication=2)
        [video_id] = populate(cluster, 1)
        primary, replica = cluster.router.shards_for(video_id, 2)
        shard = cluster.shards[replica]
        with shard.lock.write_locked():
            shard.db.remove(video_id)
        cluster.note_drop(video_id, replica)
        cluster.shards[primary].mark_down("dead disk")
        report = AntiEntropyRepairer(cluster).run()
        assert report.unrepairable == [video_id]
        assert not report.converged
        assert "converged" in report.to_dict()

    def test_metrics_counters_ride_along(self):
        from repro.service.metrics import MetricsRegistry

        cluster = ClusterCoordinator.ephemeral(2, replication=1)
        populate(cluster, 3)
        cluster.set_replication(2)
        metrics = MetricsRegistry()
        AntiEntropyRepairer(cluster, metrics=metrics).run()
        assert metrics.counter("repair_copies_added") == 3


class TestScrubberRoundTrip:
    """Bit-rot in, identical answers out — the PR's acceptance test."""

    def _rotted_cluster(self, tmp_path, n_shards=2, replication=2, n=4):
        root = tmp_path / "c"
        cluster = ClusterCoordinator.create(root, n_shards, replication=replication)
        ids = populate(cluster, n)
        return root, cluster, ids

    def test_detects_and_repairs_from_replica(self, tmp_path):
        root, cluster, ids = self._rotted_cluster(tmp_path)
        probe = cluster.shards[0].db.index.entries[0]
        point = (probe.features.var_ba, probe.features.var_oa)
        baseline = canonical(cluster.query(*point))

        victim = ids[0]
        sick_id = cluster.holders_of(victim)[0]
        damaged = inject_bit_rot(
            shard_dir(root, sick_id), logical=f"{TREE_PREFIX}{victim}"
        )
        scrubber = IntegrityScrubber(cluster, files_per_tick=64, interval_s=0.0)
        delta = scrubber.run_once()
        assert delta["corruption_found"] == 1
        assert delta["videos_repaired"] == 1
        assert delta["videos_lost"] == 0
        assert not damaged.exists()  # quarantined, not left in place
        assert cluster.shards[sick_id].repairs >= 1
        # Decision identity survives the whole rot->repair cycle.
        assert canonical(cluster.query(*point)) == baseline
        assert set(cluster.holders_of(victim)) == set(
            cluster.router.shards_for(victim, 2)
        )
        # The repaired copy verifies end to end: a second pass is clean
        # and the shard's own fsck agrees.
        assert scrubber.run_once()["corruption_found"] == 0
        assert DatabaseStorage(shard_dir(root, sick_id)).fsck().clean
        cluster.close()

    def test_republishes_rotted_catalog_from_live_state(self, tmp_path):
        root, cluster, ids = self._rotted_cluster(tmp_path)
        inject_bit_rot(shard_dir(root, 0), logical="catalog")
        scrubber = IntegrityScrubber(cluster, files_per_tick=64, interval_s=0.0)
        delta = scrubber.run_once()
        assert delta["corruption_found"] == 1
        assert delta["files_republished"] == 1
        cluster.close()
        reopened = ClusterCoordinator.open(root)
        assert sorted(reopened.video_ids()) == ids
        reopened.close()

    def test_counts_lost_videos_without_a_replica(self, tmp_path):
        root = tmp_path / "c"
        cluster = ClusterCoordinator.create(root, 1, replication=1)
        ids = populate(cluster, 2)
        inject_bit_rot(shard_dir(root, 0), logical=f"{TREE_PREFIX}{ids[0]}")
        scrubber = IntegrityScrubber(cluster, files_per_tick=64, interval_s=0.0)
        delta = scrubber.run_once()
        assert delta["corruption_found"] == 1
        assert delta["videos_repaired"] == 0
        assert delta["videos_lost"] == 1
        # The loss is honest: the rotted video is gone, the rest serve.
        assert ids[0] not in cluster
        answer = cluster.query(1.0, 1.0)
        assert all(m.video_id != ids[0] for m in answer.matches)
        cluster.close()

    def test_background_thread_keeps_scrubbing(self):
        cluster = ClusterCoordinator.ephemeral(2, replication=2)
        scrubber = IntegrityScrubber(cluster, interval_s=0.005)
        scrubber.start()
        scrubber.start()  # idempotent
        assert scrubber.running
        deadline = time.monotonic() + 5.0
        while scrubber.stats_snapshot()["passes"] < 2:
            assert time.monotonic() < deadline, "scrubber made no progress"
            time.sleep(0.005)
        scrubber.stop()
        assert not scrubber.running
        scrubber.stop()  # idempotent

    def test_rejects_bad_pacing(self):
        cluster = ClusterCoordinator.ephemeral(1)
        with pytest.raises(ValueError):
            IntegrityScrubber(cluster, files_per_tick=0)


class TestFaultInjectors:
    def test_shard_outage_kills_and_revives(self):
        cluster = ClusterCoordinator.ephemeral(2, replication=2)
        populate(cluster, 2)
        with ShardOutage(cluster, 0) as outage:
            assert outage.shard.down
            assert not cluster.query(1.0, 1.0).partial
        assert not cluster.shards[0].down

    def test_shard_outage_respects_existing_downtime(self):
        cluster = ClusterCoordinator.ephemeral(2)
        cluster.shards[1].mark_down("already benched")
        with ShardOutage(cluster, 1):
            assert cluster.shards[1].down
        # It was down before the context: not this injector's to revive.
        assert cluster.shards[1].down
        assert cluster.shards[1].down_reason == "already benched"

    def test_bit_rot_validations(self, tmp_path):
        with pytest.raises(ValueError):
            inject_bit_rot(tmp_path / "nothing-here")
        root = tmp_path / "db"
        db = VideoDatabase()
        add_synth_video(db, "vid-0", np.random.default_rng(0))
        db.save(root)
        with pytest.raises(ValueError):
            inject_bit_rot(root, logical="tree:no-such-video")
        damaged = inject_bit_rot(root, offset=0)
        storage = DatabaseStorage(root)
        statuses = {
            logical: storage.check_tracked(logical).status
            for logical in storage.tracked_records()
        }
        assert "checksum-mismatch" in statuses.values()
        assert damaged.exists()  # injection alone never repairs


class TestEngineScrubIntegration:
    def test_engine_runs_and_stops_the_scrubber(self):
        cluster = ClusterCoordinator.ephemeral(2, replication=2)
        engine = ServiceEngine(
            cluster, n_workers=1, watchdog_interval=0, scrub_interval_s=0.01
        )
        try:
            assert engine.scrubber is not None and engine.scrubber.running
            assert engine.health_payload()["cluster"]["scrubber_running"]
            assert "scrub_passes" in engine.metrics_payload()["gauges"]
        finally:
            engine.shutdown(timeout=10)
        assert not engine.scrubber.running

    def test_scrub_interval_requires_a_cluster(self):
        with pytest.raises(ValueError):
            ServiceEngine(VideoDatabase(), scrub_interval_s=0.01)


class TestRepairCLI:
    def test_cluster_repair_raises_the_factor(self, tmp_path, capsys):
        root = tmp_path / "c"
        cluster = ClusterCoordinator.create(root, 2, replication=1)
        ids = populate(cluster, 4)
        cluster.close()
        rc = cli.main(
            ["cluster", "repair", "--root", str(root), "--replicas", "2", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["copies_added"] == len(ids)
        assert payload["converged"] is True
        reopened = ClusterCoordinator.open(root)
        assert reopened.replication == 2
        for video_id in ids:
            assert len(reopened.holders_of(video_id)) == 2
        reopened.close()

    def test_cluster_scrub_heals_injected_rot(self, tmp_path, capsys):
        root = tmp_path / "c"
        cluster = ClusterCoordinator.create(root, 2, replication=2)
        ids = populate(cluster, 3)
        sick_id = cluster.holders_of(ids[0])[0]
        cluster.close()
        inject_bit_rot(
            shard_dir(root, sick_id), logical=f"{TREE_PREFIX}{ids[0]}"
        )
        rc = cli.main(["cluster", "scrub", "--root", str(root), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0  # healed from the replica -> clean
        assert payload["corruption_found"] == 1
        assert payload["videos_repaired"] == 1
        assert payload["clean"] is True

    def test_fsck_points_at_cluster_repair(self, tmp_path, capsys):
        root = tmp_path / "c"
        cluster = ClusterCoordinator.create(root, 2, replication=2)
        ids = populate(cluster, 3)
        sick_id = cluster.holders_of(ids[0])[0]
        cluster.close()
        inject_bit_rot(
            shard_dir(root, sick_id), logical=f"{TREE_PREFIX}{ids[0]}"
        )
        rc = cli.main(["fsck", str(root), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["repairable_from_replica"] == [ids[0]]
        assert "repro cluster repair" in payload["hint"]

    def test_cluster_repair_heals_the_rot_fsck_reported(self, tmp_path, capsys):
        """The full hint round-trip: fsck flags rot, repair heals it.

        Regression: the recover-mode open drops the rotted copy and
        repair re-adopts identical content from the replica, so the
        tree's digest matches the stale manifest record — the publish
        carry-over fast path must not skip the rewrite and leave the
        rotted bytes on disk.
        """
        root = tmp_path / "c"
        cluster = ClusterCoordinator.create(root, 2, replication=2)
        ids = populate(cluster, 3)
        sick_id = cluster.holders_of(ids[0])[0]
        cluster.close()
        rotted = inject_bit_rot(
            shard_dir(root, sick_id), logical=f"{TREE_PREFIX}{ids[0]}"
        )
        rotted_bytes = rotted.read_bytes()
        assert cli.main(["fsck", str(root), "--json"]) == 1
        capsys.readouterr()
        assert cli.main(["cluster", "repair", "--root", str(root)]) == 0
        capsys.readouterr()
        assert cli.main(["fsck", str(root), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert all(shard["clean"] for shard in report["shards"])
        # The rotted file was actually replaced, not carried over.
        assert not rotted.exists() or rotted.read_bytes() != rotted_bytes
