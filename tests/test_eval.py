"""Tests for repro.eval (SBD metrics, tree metrics, retrieval metrics)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import QueryError, SceneTreeError
from repro.eval.retrieval_metrics import precision_at_k, score_retrieval
from repro.eval.sbd_metrics import SBDScore, match_boundaries, score_boundaries
from repro.eval.tree_metrics import (
    pairwise_grouping_agreement,
    scene_purity,
    tree_quality,
)
from repro.scenetree.builder import SceneTreeBuilder
from repro.baselines.timetree import build_time_tree


class TestSBDScore:
    def test_paper_definitions(self):
        score = SBDScore(actual=100, detected=90, correct=81)
        assert score.recall == pytest.approx(0.81)
        assert score.precision == pytest.approx(0.90)

    def test_no_changes_perfect(self):
        score = SBDScore(actual=0, detected=0, correct=0)
        assert score.recall == 1.0 and score.precision == 1.0

    def test_detected_nothing_when_changes_exist(self):
        score = SBDScore(actual=5, detected=0, correct=0)
        assert score.recall == 0.0 and score.precision == 0.0

    def test_pooling_addition(self):
        total = SBDScore(10, 8, 7) + SBDScore(20, 22, 18)
        assert (total.actual, total.detected, total.correct) == (30, 30, 25)


class TestMatching:
    def test_exact_matches(self):
        pairs = match_boundaries([10, 20, 30], [10, 20, 30], tolerance=0)
        assert len(pairs) == 3

    def test_tolerance_window(self):
        pairs = match_boundaries([10], [11], tolerance=1)
        assert pairs == [(10, 11)]
        assert match_boundaries([10], [12], tolerance=1) == []

    def test_one_to_one(self):
        """Two detections cannot both claim one truth boundary."""
        pairs = match_boundaries([10], [9, 10, 11], tolerance=1)
        assert len(pairs) == 1
        assert pairs[0] == (10, 10)  # nearest wins

    def test_greedy_prefers_nearest(self):
        pairs = match_boundaries([10, 12], [11], tolerance=2)
        assert pairs == [(10, 11)] or pairs == [(12, 11)]
        assert len(pairs) == 1

    def test_score_boundaries(self):
        score = score_boundaries([10, 20, 30], [10, 21, 50], tolerance=1)
        assert score.correct == 2
        assert score.recall == pytest.approx(2 / 3)
        assert score.precision == pytest.approx(2 / 3)

    @given(
        st.lists(st.integers(min_value=0, max_value=500), max_size=30, unique=True),
        st.lists(st.integers(min_value=0, max_value=500), max_size=30, unique=True),
        st.integers(min_value=0, max_value=5),
    )
    def test_property_correct_bounded(self, truth, detected, tol):
        score = score_boundaries(truth, detected, tol)
        assert score.correct <= min(score.actual, score.detected)
        assert 0 <= score.recall <= 1
        assert 0 <= score.precision <= 1

    @given(st.lists(st.integers(min_value=0, max_value=500), max_size=30, unique=True))
    def test_property_perfect_detection(self, truth):
        score = score_boundaries(truth, truth, tolerance=0)
        assert score.recall == 1.0 and score.precision == 1.0


def _grouped_tree(groups):
    """Build a scene tree whose constant sign streams realize ``groups``."""
    palette = {}
    signs = []
    for g in groups:
        value = palette.setdefault(g, 20 + 38 * len(palette))
        signs.append(np.full((4, 3), value, dtype=np.uint8))
    return SceneTreeBuilder().build(signs)


class TestTreeMetrics:
    def test_perfect_grouping(self):
        groups = ["a", "b", "a", "b", "c", "a", "c", "d", "d", "d"]
        tree = _grouped_tree(groups)
        quality = tree_quality(tree, groups)
        # The paper's algorithm groups temporally: intermediate shots
        # join the scene (shot B sits inside EN1), so purity is below 1
        # by construction but agreement stays well above chance.
        assert quality.purity >= 0.5
        assert quality.pair_agreement >= 0.5
        assert quality.n_scenes >= 2

    def test_single_group_is_pure(self):
        groups = ["x", "x", "x", "x"]
        tree = _grouped_tree(groups)
        assert scene_purity(tree, groups) == 1.0
        assert pairwise_grouping_agreement(tree, groups) == 1.0

    def test_label_length_mismatch(self):
        tree = _grouped_tree(["a", "b", "a"])
        with pytest.raises(SceneTreeError):
            scene_purity(tree, ["a"])

    def test_time_tree_comparable(self):
        """The time-only baseline is scored by the same metrics."""
        groups = ["a", "b", "a", "b", "c", "a", "c", "d"]
        timetree = build_time_tree(len(groups), fanout=4)
        quality = tree_quality(timetree, groups)
        assert 0.0 <= quality.purity <= 1.0
        assert 0.0 <= quality.pair_agreement <= 1.0

    def test_content_tree_beats_time_tree_on_structured_video(self):
        """The Sec. 1 claim: content-based grouping > time-only."""
        groups = ["a", "b", "a", "b", "c", "d", "c", "d", "e", "f", "e", "f"]
        content = tree_quality(_grouped_tree(groups), groups)
        timed = tree_quality(build_time_tree(len(groups), fanout=4), groups)
        assert content.pair_agreement >= timed.pair_agreement


class TestRetrievalMetrics:
    def test_precision_at_k(self):
        assert precision_at_k("x", ["x", "x", "y"], k=3) == pytest.approx(2 / 3)

    def test_missing_results_count_as_misses(self):
        assert precision_at_k("x", ["x"], k=3) == pytest.approx(1 / 3)

    def test_none_labels_are_misses(self):
        assert precision_at_k("x", [None, "x", None], k=3) == pytest.approx(1 / 3)

    def test_rejects_bad_k(self):
        with pytest.raises(QueryError):
            precision_at_k("x", [], k=0)

    def test_score_retrieval_aggregates(self):
        score = score_retrieval(
            [("x", ["x", "x", "x"]), ("y", ["y", "n", "n"])], k=3
        )
        assert score.n_queries == 2
        assert score.mean_precision == pytest.approx((1.0 + 1 / 3) / 2)
        assert score.perfect_queries == 1

    def test_score_retrieval_rejects_empty(self):
        with pytest.raises(QueryError):
            score_retrieval([])
