"""Tests for representative-frame selection (Table 2 semantics)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ShotError
from repro.scenetree.representative import (
    longest_constant_run,
    most_frequent_sign_frame,
    representative_frames,
)

#: The paper's Table 2 sign stream (frames 1-20, 0-indexed here).
TABLE2 = np.array(
    [(219, 152, 142)] * 6
    + [(226, 164, 172)] * 2
    + [(213, 149, 134)] * 4
    + [(200, 137, 123)] * 2
    + [(228, 160, 149)] * 6,
    dtype=np.uint8,
)


class TestMostFrequent:
    def test_paper_table2_selects_frame_one(self):
        """Frames 1-6 and 15-20 tie at six; the earlier group wins."""
        assert most_frequent_sign_frame(TABLE2) == 0

    def test_single_frame(self):
        assert most_frequent_sign_frame(np.array([[1, 2, 3]], dtype=np.uint8)) == 0

    def test_majority_wins(self):
        signs = np.array([[9, 9, 9], [5, 5, 5], [5, 5, 5]], dtype=np.uint8)
        assert most_frequent_sign_frame(signs) == 1

    def test_non_contiguous_repetitions_counted(self):
        """Frequency counts all frames with the value, not just runs."""
        signs = np.array(
            [[5, 5, 5], [9, 9, 9], [5, 5, 5], [9, 9, 9], [5, 5, 5]],
            dtype=np.uint8,
        )
        assert most_frequent_sign_frame(signs) == 0  # value 5 occurs 3x

    def test_rejects_empty(self):
        with pytest.raises(ShotError):
            most_frequent_sign_frame(np.zeros((0, 3), dtype=np.uint8))

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=40))
    def test_property_selected_frame_has_max_count(self, values):
        signs = np.array([[v, v, v] for v in values], dtype=np.uint8)
        chosen = most_frequent_sign_frame(signs)
        chosen_count = values.count(values[chosen])
        assert chosen_count == max(values.count(v) for v in values)
        # Earliest frame of that value.
        assert values.index(values[chosen]) == chosen


class TestLongestRun:
    def test_paper_table2_run_is_six(self):
        assert longest_constant_run(TABLE2) == 6

    def test_all_distinct(self):
        signs = np.array([[k, k, k] for k in range(5)], dtype=np.uint8)
        assert longest_constant_run(signs) == 1

    def test_all_same(self):
        signs = np.full((7, 3), 4, dtype=np.uint8)
        assert longest_constant_run(signs) == 7

    def test_run_at_end(self):
        signs = np.array([[1, 1, 1], [2, 2, 2], [2, 2, 2], [2, 2, 2]], dtype=np.uint8)
        assert longest_constant_run(signs) == 3

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=50))
    def test_property_matches_naive(self, values):
        signs = np.array([[v, v, v] for v in values], dtype=np.uint8)
        best = cur = 1
        for a, b in zip(values, values[1:]):
            cur = cur + 1 if a == b else 1
            best = max(best, cur)
        assert longest_constant_run(signs) == best


class TestMultipleRepresentatives:
    def test_gs_extension_on_table2(self):
        """g(s)=2 picks the two six-frame values, earliest first."""
        frames = representative_frames(TABLE2, count=2)
        assert frames == [0, 14]

    def test_count_larger_than_distinct_values(self):
        signs = np.array([[1, 1, 1], [2, 2, 2]], dtype=np.uint8)
        assert representative_frames(signs, count=5) == [0, 1]

    def test_rejects_zero_count(self):
        with pytest.raises(ShotError):
            representative_frames(TABLE2, count=0)

    def test_first_equals_single_selection(self):
        assert representative_frames(TABLE2, count=1)[0] == most_frequent_sign_frame(TABLE2)
