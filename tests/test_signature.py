"""Tests for repro.signature (signs, distances, batched extraction)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.config import RegionConfig
from repro.errors import EmptyClipError, FrameError
from repro.signature.extract import SignatureExtractor
from repro.signature.sign import (
    Sign,
    max_channel_difference,
    sign_difference_percent,
    signs_equal,
    signs_match,
)
from repro.video.clip import VideoClip


class TestSign:
    def test_round_trip_array(self):
        sign = Sign(219, 152, 142)
        assert Sign.from_array(sign.to_array()) == sign

    def test_from_array_rounds(self):
        assert Sign.from_array(np.array([1.4, 2.6, 254.9])) == Sign(1, 3, 255)

    def test_from_array_clips(self):
        assert Sign.from_array(np.array([-5.0, 300.0, 128.0])) == Sign(0, 255, 128)

    def test_rejects_out_of_range(self):
        with pytest.raises(FrameError):
            Sign(-1, 0, 0)
        with pytest.raises(FrameError):
            Sign(0, 256, 0)

    def test_hashable_for_counting(self):
        counts = {Sign(1, 2, 3): 5}
        assert counts[Sign(1, 2, 3)] == 5

    def test_difference_percent_eq2(self):
        """Eq. 2: D_s = max channel diff / 256 * 100."""
        a, b = Sign(219, 152, 142), Sign(226, 164, 172)
        assert a.difference_percent(b) == pytest.approx(30 / 256 * 100)


class TestSignArrayOps:
    def test_max_channel_difference_broadcast(self):
        stream = np.array([[10, 20, 30], [15, 20, 30], [10, 60, 30]], dtype=np.uint8)
        ref = np.array([10, 20, 30], dtype=np.uint8)
        diff = max_channel_difference(stream, ref)
        assert np.allclose(diff, [0, 5, 40])

    def test_no_uint8_wraparound(self):
        a = np.array([0, 0, 0], dtype=np.uint8)
        b = np.array([255, 255, 255], dtype=np.uint8)
        assert max_channel_difference(a, b) == 255.0

    def test_signs_match_threshold(self):
        a = np.array([100, 100, 100])
        b = np.array([100, 100, 125])
        assert signs_match(a, b, 0.10)          # 25 < 25.6
        c = np.array([100, 100, 126])
        assert not signs_match(a, c, 0.10)      # 26 > 25.6

    def test_signs_equal(self):
        assert signs_equal(np.array([1, 2, 3]), np.array([1, 2, 3]))
        assert not signs_equal(np.array([1, 2, 3]), np.array([1, 2, 4]))

    @given(st.integers(min_value=0, max_value=255))
    def test_self_difference_zero(self, v):
        sign = np.array([v, v, v])
        assert sign_difference_percent(sign, sign) == 0.0


class TestSignatureExtractor:
    def test_geometry_binding(self):
        ex = SignatureExtractor(120, 160)
        assert ex.geometry.tba_shape == (13, 253)

    def test_constant_frame_gives_constant_features(self):
        ex = SignatureExtractor(120, 160)
        frame = np.full((120, 160, 3), 90, dtype=np.uint8)
        features = ex.extract_frame(frame)
        assert np.all(features.sign_ba == 90)
        assert np.all(features.sign_oa == 90)
        assert np.all(features.signature_ba == 90)

    def test_shapes(self):
        ex = SignatureExtractor(120, 160)
        frames = np.zeros((4, 120, 160, 3), dtype=np.uint8)
        features = ex.extract_frames(frames)
        assert features.signatures_ba.shape == (4, 253, 3)
        assert features.signs_ba.shape == (4, 3)
        assert features.signs_oa.shape == (4, 3)
        assert len(features) == 4

    def test_sign_ba_sees_only_background(self):
        """Painting the FOA must not move Sign^BA."""
        ex = SignatureExtractor(120, 160)
        w = ex.geometry.w_est
        base = np.full((120, 160, 3), 50, dtype=np.uint8)
        painted = base.copy()
        painted[w:, w : 160 - w] = 250
        f_base = ex.extract_frame(base)
        f_painted = ex.extract_frame(painted)
        assert np.array_equal(f_base.sign_ba, f_painted.sign_ba)
        assert not np.array_equal(f_base.sign_oa, f_painted.sign_oa)

    def test_sign_oa_sees_only_object_area(self):
        """Painting the background strip must not move Sign^OA."""
        ex = SignatureExtractor(120, 160)
        w = ex.geometry.w_est
        base = np.full((120, 160, 3), 50, dtype=np.uint8)
        painted = base.copy()
        painted[:w, :, :] = 250
        painted[:, :w, :] = 250
        painted[:, 160 - w :, :] = 250
        f_base = ex.extract_frame(base)
        f_painted = ex.extract_frame(painted)
        assert np.array_equal(f_base.sign_oa, f_painted.sign_oa)
        assert not np.array_equal(f_base.sign_ba, f_painted.sign_ba)

    def test_batch_equals_per_frame(self):
        rng = np.random.default_rng(9)
        frames = rng.integers(0, 255, size=(5, 120, 160, 3)).astype(np.uint8)
        ex = SignatureExtractor(120, 160)
        batch = ex.extract_frames(frames)
        for k in range(5):
            single = ex.extract_frame(frames[k])
            assert np.array_equal(single.sign_ba, batch.signs_ba[k])
            assert np.array_equal(single.sign_oa, batch.signs_oa[k])
            assert np.array_equal(single.signature_ba, batch.signatures_ba[k])

    def test_for_clip_and_extract_clip(self):
        frames = np.zeros((3, 60, 80, 3), dtype=np.uint8)
        clip = VideoClip("tiny", frames)
        ex = SignatureExtractor.for_clip(clip)
        features = ex.extract_clip(clip)
        assert len(features) == 3

    def test_frame_accessor(self):
        ex = SignatureExtractor(60, 80)
        frames = np.zeros((2, 60, 80, 3), dtype=np.uint8)
        features = ex.extract_frames(frames)
        single = features.frame(1)
        assert single.sign_ba.shape == (3,)

    def test_rejects_wrong_size(self):
        ex = SignatureExtractor(120, 160)
        with pytest.raises(FrameError):
            ex.extract_frames(np.zeros((2, 60, 80, 3), dtype=np.uint8))

    def test_rejects_empty_stack(self):
        ex = SignatureExtractor(120, 160)
        with pytest.raises((EmptyClipError, FrameError)):
            ex.extract_frames(np.zeros((0, 120, 160, 3), dtype=np.uint8))

    def test_custom_region_config(self):
        ex = SignatureExtractor(120, 160, config=RegionConfig(width_fraction=0.2))
        assert ex.geometry.w_est == 32
        assert ex.geometry.w == 29

    @given(st.integers(min_value=0, max_value=255))
    def test_property_constant_stack_quantizes_exactly(self, v):
        ex = SignatureExtractor(60, 80)
        frames = np.full((2, 60, 80, 3), v, dtype=np.uint8)
        features = ex.extract_frames(frames)
        assert np.all(features.signs_ba == v)
        assert np.all(features.signs_oa == v)
