"""Tests for the synthetic video substrate (repro.synth)."""

import numpy as np
import pytest
from repro.errors import WorkloadError
from repro.synth.camera import CameraSpec, camera_offsets
from repro.synth.canvas import (
    add_noise,
    checkerboard,
    draw_ellipse,
    draw_rect,
    fill,
    horizontal_gradient,
    new_canvas,
    stripes,
    vertical_gradient,
)
from repro.synth.objects import ObjectSpec, draw_objects
from repro.synth.scripts import ClipScript, ScriptedShot, render_clip
from repro.synth.shotgen import ShotSpec, render_shot
from repro.synth.textures import BackgroundSpec, render_background


class TestCanvas:
    def test_new_canvas_filled(self):
        canvas = new_canvas(4, 6, (10.0, 20.0, 30.0))
        assert canvas.shape == (4, 6, 3)
        assert np.all(canvas[..., 2] == 30.0)

    def test_fill(self):
        canvas = new_canvas(3, 3)
        fill(canvas, (1.0, 2.0, 3.0))
        assert np.all(canvas[..., 0] == 1.0)

    def test_horizontal_gradient_endpoints(self):
        canvas = new_canvas(2, 10)
        horizontal_gradient(canvas, (0.0, 0.0, 0.0), (90.0, 90.0, 90.0))
        assert np.allclose(canvas[:, 0], 0.0)
        assert np.allclose(canvas[:, -1], 90.0)
        assert np.all(np.diff(canvas[0, :, 0]) >= 0)

    def test_vertical_gradient_endpoints(self):
        canvas = new_canvas(10, 2)
        vertical_gradient(canvas, (200.0,) * 3, (100.0,) * 3)
        assert np.allclose(canvas[0], 200.0)
        assert np.allclose(canvas[-1], 100.0)

    def test_draw_rect_clipped(self):
        canvas = new_canvas(10, 10)
        draw_rect(canvas, top=-5, left=-5, height=8, width=8, color=(9.0,) * 3)
        assert np.all(canvas[:3, :3] == 9.0)
        assert np.all(canvas[4:, 4:] == 0.0)

    def test_draw_ellipse_inside_bbox(self):
        canvas = new_canvas(20, 20)
        draw_ellipse(canvas, 10, 10, 5, 3, (7.0,) * 3)
        assert canvas[10, 10, 0] == 7.0     # center painted
        assert canvas[10, 14, 0] == 0.0     # outside col radius
        assert canvas[4, 10, 0] == 0.0      # outside row radius

    def test_ellipse_fully_off_canvas(self):
        canvas = new_canvas(10, 10)
        draw_ellipse(canvas, 100, 100, 3, 3, (7.0,) * 3)
        assert np.all(canvas == 0.0)

    def test_stripes_alternate(self):
        canvas = new_canvas(2, 32)
        stripes(canvas, (0.0,) * 3, (10.0,) * 3, period=8)
        assert np.all(canvas[:, :8] == 0.0)
        assert np.all(canvas[:, 8:16] == 10.0)

    def test_checkerboard(self):
        canvas = new_canvas(16, 16)
        checkerboard(canvas, (0.0,) * 3, (10.0,) * 3, period=8)
        assert canvas[0, 0, 0] != canvas[0, 8, 0]
        assert canvas[0, 0, 0] == canvas[8, 8, 0]

    def test_noise_bounded_and_seeded(self):
        rng = np.random.default_rng(0)
        canvas = new_canvas(8, 8, (128.0,) * 3)
        add_noise(canvas, rng, 5.0)
        assert np.all(canvas >= 123.0) and np.all(canvas <= 133.0)

    def test_zero_noise_identity(self):
        canvas = new_canvas(4, 4, (50.0,) * 3)
        add_noise(canvas, np.random.default_rng(0), 0.0)
        assert np.all(canvas == 50.0)

    def test_rejects_negative_noise(self):
        with pytest.raises(WorkloadError):
            add_noise(new_canvas(2, 2), np.random.default_rng(0), -1.0)


class TestTextures:
    @pytest.mark.parametrize("kind", BackgroundSpec.__dataclass_fields__ and
                             ("flat", "hgradient", "vgradient", "stripes",
                              "checker", "blotches", "hgradient_bars",
                              "vgradient_bars"))
    def test_all_kinds_render(self, kind):
        spec = BackgroundSpec(kind=kind, base_color=(120.0, 100.0, 80.0))
        world = render_background(spec, rows=24, cols=32, margin=8)
        assert world.shape == (40, 48, 3)
        assert world.min() >= 0 and world.max() <= 255

    def test_unknown_kind_rejected(self):
        with pytest.raises(WorkloadError):
            BackgroundSpec(kind="plaid")

    def test_color_shift_clips(self):
        spec = BackgroundSpec(base_color=(250.0, 5.0, 128.0))
        shifted = spec.with_color_shift((20.0, -20.0, 0.0))
        assert shifted.base_color == (255.0, 0.0, 128.0)

    def test_blotches_deterministic_by_seed(self):
        spec = BackgroundSpec(kind="blotches", detail_seed=7)
        a = render_background(spec, 20, 20, margin=4)
        b = render_background(spec, 20, 20, margin=4)
        assert np.array_equal(a, b)

    def test_blotches_differ_across_seeds(self):
        a = render_background(BackgroundSpec(kind="blotches", detail_seed=1), 20, 20, 4)
        b = render_background(BackgroundSpec(kind="blotches", detail_seed=2), 20, 20, 4)
        assert not np.array_equal(a, b)


class TestCamera:
    def test_static_stays_at_start_offset(self):
        spec = CameraSpec(kind="static", start_offset=(3.0, -4.0))
        rows, cols, zooms = camera_offsets(spec, 5, margin=10)
        assert np.allclose(rows, 3.0) and np.allclose(cols, -4.0)
        assert np.allclose(zooms, 1.0)

    def test_pan_drifts_linearly(self):
        spec = CameraSpec(kind="pan", speed=2.0, direction=1)
        _, cols, _ = camera_offsets(spec, 4, margin=100)
        assert np.allclose(cols, [0, 2, 4, 6])

    def test_tilt_direction(self):
        spec = CameraSpec(kind="tilt", speed=1.0, direction=-1)
        rows, _, _ = camera_offsets(spec, 3, margin=100)
        assert np.allclose(rows, [0, -1, -2])

    def test_diagonal_components(self):
        spec = CameraSpec(kind="diagonal", speed=np.sqrt(2), direction=1)
        rows, cols, _ = camera_offsets(spec, 3, margin=100)
        assert np.allclose(rows, cols)
        assert rows[-1] == pytest.approx(2.0)

    def test_zoom_changes_scale(self):
        spec = CameraSpec(kind="zoom", speed=0.05, direction=1)
        _, _, zooms = camera_offsets(spec, 4, margin=10)
        assert zooms[0] == 1.0
        assert np.all(np.diff(zooms) < 0)  # zooming in shrinks the window

    def test_offsets_clipped_to_margin(self):
        spec = CameraSpec(kind="pan", speed=50.0, direction=1)
        _, cols, _ = camera_offsets(spec, 10, margin=30)
        assert cols.max() <= 30.0

    def test_rejects_bad_direction(self):
        with pytest.raises(WorkloadError):
            CameraSpec(direction=0)

    def test_rejects_unknown_kind(self):
        with pytest.raises(WorkloadError):
            CameraSpec(kind="orbit")


class TestObjects:
    def test_position_linear_motion(self):
        spec = ObjectSpec(start=(10.0, 20.0), velocity=(1.0, 2.0))
        assert spec.position_at(0) == (10.0, 20.0)
        assert spec.position_at(5) == (15.0, 30.0)

    def test_wobble_returns_to_start_each_period(self):
        spec = ObjectSpec(start=(50.0, 50.0), wobble=5.0, wobble_period=8)
        r0, _ = spec.position_at(0)
        r8, _ = spec.position_at(8)
        assert r0 == pytest.approx(r8)

    def test_draw_objects_paints(self):
        frame = np.zeros((40, 40, 3), dtype=np.float64)
        spec = ObjectSpec(shape="rect", color=(9.0,) * 3, size=(10, 10), start=(20, 20))
        draw_objects(frame, (spec,), frame_index=0)
        assert frame[20, 20, 0] == 9.0

    def test_rejects_unknown_shape(self):
        with pytest.raises(WorkloadError):
            ObjectSpec(shape="triangle")


class TestShotGen:
    def test_shape_and_dtype(self):
        spec = ShotSpec(n_frames=4)
        frames = render_shot(spec, 30, 40)
        assert frames.shape == (4, 30, 40, 3)
        assert frames.dtype == np.uint8

    def test_deterministic(self):
        spec = ShotSpec(n_frames=3, noise=2.0, noise_seed=9)
        a = render_shot(spec, 20, 20)
        b = render_shot(spec, 20, 20)
        assert np.array_equal(a, b)

    def test_static_noiseless_shot_constant(self):
        spec = ShotSpec(
            n_frames=3,
            background=BackgroundSpec(base_color=(50.0, 60.0, 70.0)),
            noise=0.0,
        )
        frames = render_shot(spec, 20, 20)
        assert np.array_equal(frames[0], frames[1])
        assert np.all(frames[0, 0, 0] == [50, 60, 70])

    def test_flash_frame_brighter(self):
        spec = ShotSpec(
            n_frames=3,
            background=BackgroundSpec(base_color=(50.0,) * 3),
            noise=0.0,
            flash_frames=(1,),
            flash_gain=100.0,
        )
        frames = render_shot(spec, 16, 16)
        assert frames[1].mean() > frames[0].mean() + 90

    def test_flash_out_of_range_rejected(self):
        with pytest.raises(WorkloadError):
            ShotSpec(n_frames=3, flash_frames=(5,))

    def test_light_profile_interpolates(self):
        spec = ShotSpec(
            n_frames=5,
            background=BackgroundSpec(base_color=(100.0,) * 3),
            noise=0.0,
            light_profile=((0, 0.0), (4, 40.0)),
        )
        frames = render_shot(spec, 16, 16)
        means = frames.reshape(5, -1).mean(axis=1)
        assert np.all(np.diff(means) > 0)
        assert means[-1] == pytest.approx(140.0, abs=1.0)

    def test_light_profile_unsorted_rejected(self):
        with pytest.raises(WorkloadError):
            ShotSpec(n_frames=5, light_profile=((3, 0.0), (1, 5.0)))

    def test_pan_moves_content(self):
        spec = ShotSpec(
            n_frames=2,
            background=BackgroundSpec(
                kind="hgradient",
                base_color=(0.0,) * 3,
                accent_color=(255.0,) * 3,
            ),
            camera=CameraSpec(kind="pan", speed=20.0, direction=1),
            noise=0.0,
        )
        frames = render_shot(spec, 20, 30)
        assert frames[1].astype(int).mean() > frames[0].astype(int).mean()


class TestScripts:
    def _script(self, transitions=("cut", "cut")):
        shots = [
            ScriptedShot(
                spec=ShotSpec(
                    n_frames=6,
                    background=BackgroundSpec(base_color=(v,) * 3),
                    noise=0.0,
                ),
                group=g,
                transition=t,
            )
            for v, g, t in zip((40.0, 140.0, 240.0), "abc", ("cut",) + tuple(transitions[:2]))
        ]
        return ClipScript(name="s", shots=tuple(shots), rows=16, cols=20)

    def test_cut_ground_truth(self):
        clip, truth = render_clip(self._script())
        assert len(clip) == 18
        assert truth.boundaries == (6, 12)
        assert truth.shot_ranges == ((0, 6), (6, 12), (12, 18))
        assert truth.groups == ("a", "b", "c")

    def test_dissolve_inserts_frames(self):
        clip, truth = render_clip(self._script(transitions=("dissolve", "cut")))
        assert len(clip) == 18 + 3  # default 3 dissolve frames
        assert truth.boundaries == (9, 15)
        # Dissolve frames belong to the preceding shot's range.
        assert truth.shot_ranges[0] == (0, 9)

    def test_dissolve_frames_are_intermediate(self):
        clip, truth = render_clip(self._script(transitions=("dissolve", "cut")))
        blend = clip.frames[6:9].astype(float).mean(axis=(1, 2, 3))
        assert np.all(blend > 40.0) and np.all(blend < 140.0)
        assert np.all(np.diff(blend) > 0)

    def test_group_of_frame(self):
        _, truth = render_clip(self._script())
        assert truth.group_of_frame(0) == "a"
        assert truth.group_of_frame(17) == "c"
        with pytest.raises(WorkloadError):
            truth.group_of_frame(99)

    def test_archetypes_for_ranges_by_overlap(self):
        _, truth = render_clip(self._script())
        object.__setattr__(truth, "archetypes", ("x", None, "z"))
        # Detected ranges merge the first two scripted shots.
        labels = truth.archetypes_for_ranges([(0, 12), (12, 18)])
        assert labels == {0: "x", 1: "z"}

    def test_metadata_carries_ground_truth(self):
        clip, truth = render_clip(self._script())
        assert clip.metadata["ground_truth"] is truth

    def test_empty_script_rejected(self):
        with pytest.raises(WorkloadError):
            ClipScript(name="x", shots=())


class TestFadeTransition:
    def _clip(self):
        shots = tuple(
            ScriptedShot(
                spec=ShotSpec(
                    n_frames=6,
                    background=BackgroundSpec(base_color=(v,) * 3),
                    noise=0.0,
                ),
                group=g,
                transition=t,
                transition_frames=3,
            )
            for v, g, t in [(40.0, "a", "cut"), (140.0, "b", "fade"), (240.0, "c", "cut")]
        )
        return render_clip(ClipScript(name="fade", shots=shots, rows=16, cols=20))

    def test_ground_truth_ranges_tile(self):
        clip, truth = self._clip()
        assert len(clip) == 24  # 18 scripted + 3 fade-out + 3 fade-in
        assert truth.boundaries == (9, 18)
        assert truth.shot_ranges == ((0, 9), (9, 18), (18, 24))

    def test_fade_reaches_black_then_recovers(self):
        clip, truth = self._clip()
        means = clip.frames.reshape(len(clip), -1).mean(axis=1)
        nadir = means[6:12].min()
        assert nadir < 5.0                      # passes through black
        assert np.all(np.diff(means[5:9]) < 0)  # fading out
        assert np.all(np.diff(means[9:13]) > 0)  # fading in

    def test_fade_out_belongs_to_previous_shot(self):
        _, truth = self._clip()
        assert truth.group_of_frame(8) == "a"   # last fade-out frame
        assert truth.group_of_frame(9) == "b"   # first fade-in frame
