"""Tests for repro.geometry.regions (FBA/FOA geometry, Sec. 2.2)."""

import numpy as np
import pytest

from repro.config import RegionConfig
from repro.errors import DimensionError, FrameError
from repro.geometry.regions import (
    Rect,
    compute_frame_geometry,
    extract_foa,
    fba_rects,
)


class TestRect:
    def test_dimensions(self):
        rect = Rect(top=2, left=3, bottom=10, right=9)
        assert rect.height == 8
        assert rect.width == 6
        assert rect.area == 48

    def test_slice_from(self):
        frame = np.arange(4 * 5 * 3, dtype=np.uint8).reshape(4, 5, 3)
        rect = Rect(top=1, left=2, bottom=3, right=4)
        view = rect.slice_from(frame)
        assert view.shape == (2, 2, 3)
        assert np.array_equal(view, frame[1:3, 2:4])

    def test_rejects_degenerate(self):
        with pytest.raises(DimensionError):
            Rect(top=5, left=0, bottom=3, right=10)


class TestComputeFrameGeometry:
    def test_paper_dimensions_160x120(self):
        """Sec. 2.2's worked example: c=160, r=120."""
        g = compute_frame_geometry(120, 160)
        assert g.w_est == 16
        assert g.b_est == 128      # c - 2w'
        assert g.h_est == 104      # r - w'
        assert g.l_est == 368      # c + 2h'
        assert g.w == 13
        assert g.b == 125
        assert g.h == 125
        assert g.l == 253

    def test_shapes(self):
        g = compute_frame_geometry(120, 160)
        assert g.tba_shape == (13, 253)
        assert g.foa_shape == (125, 125)

    def test_unsnapped_mode_keeps_estimates(self):
        config = RegionConfig(snap_to_size_set=False)
        g = compute_frame_geometry(120, 160, config)
        assert (g.w, g.h, g.b, g.l) == (16, 104, 128, 368)

    def test_rejects_tiny_frames(self):
        with pytest.raises(DimensionError):
            compute_frame_geometry(2, 160)

    @pytest.mark.parametrize("rows,cols", [(60, 80), (120, 160), (240, 352), (480, 640)])
    def test_all_derived_dims_positive(self, rows, cols):
        g = compute_frame_geometry(rows, cols)
        assert g.w >= 1 and g.h >= 1 and g.b >= 1 and g.l >= 1


class TestFBARects:
    def test_pieces_tile_the_fba(self):
        """Left column + top bar + right column = the ⊓ shape, disjoint."""
        g = compute_frame_geometry(120, 160)
        left, top, right = fba_rects(g)
        assert top.top == 0 and top.bottom == g.w_est
        assert top.left == 0 and top.right == 160
        assert left.top == g.w_est and left.bottom == 120
        assert right.right == 160 and right.left == 160 - g.w_est
        # Disjoint: columns start below the bar.
        assert left.top == top.bottom
        total_area = left.area + top.area + right.area
        expected = g.w_est * 160 + 2 * g.w_est * (120 - g.w_est)
        assert total_area == expected


class TestExtractFOA:
    def test_foa_is_central_region(self):
        g = compute_frame_geometry(120, 160)
        frame = np.zeros((120, 160, 3), dtype=np.uint8)
        frame[g.w_est :, g.w_est : 160 - g.w_est] = 200
        foa = extract_foa(frame, g)
        assert foa.shape == (g.h_est, g.b_est, 3)
        assert np.all(foa == 200)

    def test_foa_excludes_background_strip(self):
        g = compute_frame_geometry(120, 160)
        frame = np.zeros((120, 160, 3), dtype=np.uint8)
        frame[: g.w_est, :, :] = 255       # top bar
        frame[:, : g.w_est, :] = 255       # left column
        frame[:, 160 - g.w_est :, :] = 255  # right column
        foa = extract_foa(frame, g)
        assert np.all(foa == 0)

    def test_rejects_shape_mismatch(self):
        g = compute_frame_geometry(120, 160)
        with pytest.raises(FrameError):
            extract_foa(np.zeros((60, 80, 3), dtype=np.uint8), g)

    def test_rejects_non_rgb(self):
        g = compute_frame_geometry(120, 160)
        with pytest.raises(FrameError):
            extract_foa(np.zeros((120, 160), dtype=np.uint8), g)
