"""Tests for the banded-diagonal stage-3 matcher vs. the reference DP.

``longest_match_run`` (vectorized diagonal walk) and
``longest_match_run_dp`` (row-by-row dynamic program) are independent
implementations of the same definition; with ``min_run=None`` they
must agree exactly on every input.
"""

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.sbd.stages import (
    classify_pair,
    longest_match_run,
    longest_match_run_dp,
    stage3_shift_match,
)
from repro.config import SBDConfig


def random_signatures(rng, la, lb, spread):
    """Two uint8 signatures whose per-pixel diffs straddle the tolerance."""
    base = rng.integers(0, 256, size=(max(la, lb), 3))
    a = np.clip(base[:la] + rng.integers(-spread, spread + 1, (la, 3)), 0, 255)
    b = np.clip(base[:lb] + rng.integers(-spread, spread + 1, (lb, 3)), 0, 255)
    return a.astype(np.uint8), b.astype(np.uint8)


class TestEquivalenceWithDP:
    def test_random_equivalence(self):
        rng = np.random.default_rng(0)
        for trial in range(150):
            la = int(rng.integers(1, 40))
            lb = int(rng.integers(1, 40))
            spread = int(rng.choice([5, 15, 30]))
            a, b = random_signatures(rng, la, lb, spread)
            tol = float(rng.choice([0.05, 0.1, 0.2]))
            max_shift = [None, 0, 2, 5, 100][int(rng.integers(0, 5))]
            fast = longest_match_run(a, b, tol, max_shift=max_shift)
            slow = longest_match_run_dp(a, b, tol, max_shift=max_shift)
            assert fast == slow, (trial, la, lb, tol, max_shift)

    def test_random_equivalence_float_inputs(self):
        rng = np.random.default_rng(1)
        for _ in range(40):
            a = rng.uniform(0, 255, size=(int(rng.integers(2, 30)), 3))
            b = rng.uniform(0, 255, size=(int(rng.integers(2, 30)), 3))
            assert longest_match_run(a, b, 0.1) == longest_match_run_dp(a, b, 0.1)

    def test_uint8_and_float_paths_agree(self):
        rng = np.random.default_rng(2)
        a, b = random_signatures(rng, 29, 29, 20)
        assert longest_match_run(a, b, 0.1) == longest_match_run(
            a.astype(np.float64), b.astype(np.float64), 0.1
        )


class TestAdversarialCases:
    def test_identical_signatures(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 256, size=(61, 3)).astype(np.uint8)
        assert longest_match_run(a, a, 0.1) == 61

    def test_nothing_matches(self):
        a = np.zeros((13, 3), dtype=np.uint8)
        b = np.full((13, 3), 200, dtype=np.uint8)
        assert longest_match_run(a, b, 0.1) == 0

    def test_everything_matches(self):
        a = np.full((13, 3), 100, dtype=np.uint8)
        b = np.full((17, 3), 101, dtype=np.uint8)
        assert longest_match_run(a, b, 0.1) == 13

    def test_single_run_at_known_shift(self):
        # b equals a shifted by 4 positions; elsewhere everything differs.
        rng = np.random.default_rng(4)
        a = rng.integers(100, 110, size=(20, 3)).astype(np.uint8)
        b = np.zeros((24, 3), dtype=np.uint8)
        b[4:24] = a
        run = longest_match_run(a, b, 0.05)
        assert run == 20
        assert longest_match_run(a, b, 0.05, max_shift=3) < 20

    def test_run_broken_by_single_mismatch(self):
        a = np.full((21, 3), 50, dtype=np.uint8)
        b = a.copy()
        b[10] = 255  # splits the main diagonal into runs of 10 and 10
        assert longest_match_run(a, b, 0.1) == 10
        assert longest_match_run_dp(a, b, 0.1) == 10

    def test_single_pixel_signatures(self):
        a = np.array([[10, 10, 10]], dtype=np.uint8)
        b = np.array([[12, 10, 10]], dtype=np.uint8)
        assert longest_match_run(a, b, 0.1) == 1
        assert longest_match_run(a, b, 0.001) == 0

    def test_asymmetric_lengths(self):
        rng = np.random.default_rng(5)
        a, b = random_signatures(rng, 5, 61, 10)
        assert longest_match_run(a, b, 0.1) == longest_match_run_dp(a, b, 0.1)
        assert longest_match_run(b, a, 0.1) == longest_match_run_dp(b, a, 0.1)


class TestMaxShiftEdges:
    def test_max_shift_zero_is_main_diagonal_only(self):
        rng = np.random.default_rng(6)
        a, b = random_signatures(rng, 29, 29, 20)
        fast = longest_match_run(a, b, 0.1, max_shift=0)
        slow = longest_match_run_dp(a, b, 0.1, max_shift=0)
        assert fast == slow
        # Equivalent to the longest aligned positional run.
        match = (np.abs(a.astype(int) - b.astype(int)).max(-1) < 25.6).astype(int)
        best = run = 0
        for m in match:
            run = run + 1 if m else 0
            best = max(best, run)
        assert fast == best

    def test_max_shift_at_least_length_equals_unbounded(self):
        rng = np.random.default_rng(7)
        for la, lb in [(13, 13), (13, 29), (29, 13)]:
            a, b = random_signatures(rng, la, lb, 20)
            unbounded = longest_match_run(a, b, 0.1, max_shift=None)
            for shift in (max(la, lb), max(la, lb) + 7):
                assert longest_match_run(a, b, 0.1, max_shift=shift) == unbounded

    def test_negative_max_shift_rejected(self):
        a = np.zeros((5, 3), dtype=np.uint8)
        with pytest.raises(DimensionError):
            longest_match_run(a, a, 0.1, max_shift=-1)
        with pytest.raises(DimensionError):
            longest_match_run_dp(a, a, 0.1, max_shift=-1)

    def test_shape_validation(self):
        a = np.zeros((5, 3), dtype=np.uint8)
        bad = np.zeros((5, 4), dtype=np.uint8)
        with pytest.raises(DimensionError):
            longest_match_run(a, bad, 0.1)
        with pytest.raises(DimensionError):
            longest_match_run(a.ravel(), a.ravel(), 0.1)


class TestMinRunPruning:
    def test_decision_consistency(self):
        """run >= min_run must agree with the exact DP decision."""
        rng = np.random.default_rng(8)
        for trial in range(120):
            la = int(rng.integers(2, 40))
            lb = int(rng.integers(2, 40))
            a, b = random_signatures(rng, la, lb, 20)
            min_run = float(rng.uniform(0.5, min(la, lb) + 2))
            max_shift = [None, 3][trial % 2]
            exact = longest_match_run_dp(a, b, 0.1, max_shift=max_shift)
            pruned = longest_match_run(
                a, b, 0.1, max_shift=max_shift, min_run=min_run
            )
            assert (pruned >= min_run) == (exact >= min_run), (
                trial, la, lb, min_run, exact, pruned,
            )
            # Value-exact whenever the threshold is reached.
            if pruned >= min_run:
                assert pruned == exact

    def test_min_run_larger_than_any_diagonal(self):
        a = np.full((13, 3), 7, dtype=np.uint8)
        assert longest_match_run(a, a, 0.1, min_run=14) == 0

    def test_min_run_never_overreports(self):
        rng = np.random.default_rng(9)
        a, b = random_signatures(rng, 29, 29, 25)
        exact = longest_match_run_dp(a, b, 0.1)
        assert longest_match_run(a, b, 0.1, min_run=5) <= exact


class TestStageWrappers:
    def test_stage3_matches_dp_decision(self):
        rng = np.random.default_rng(10)
        for _ in range(60):
            a, b = random_signatures(rng, 29, 29, 20)
            run = longest_match_run_dp(a, b, 0.1)
            expected = run >= 0.3 * 29
            assert stage3_shift_match(a, b, 0.1, 0.3) == expected

    def test_classify_pair_unchanged_decision(self):
        rng = np.random.default_rng(11)
        config = SBDConfig()
        for _ in range(40):
            a, b = random_signatures(rng, 29, 29, 25)
            sign_a = a.mean(axis=0).astype(np.uint8)
            sign_b = b.mean(axis=0).astype(np.uint8)
            got = classify_pair(sign_a, a, sign_b, b, config)
            # Recompute the cascade with the reference matcher.
            if np.abs(sign_a.astype(float) - sign_b.astype(float)).max() < config.sign_threshold_255:
                expected = True
            elif np.abs(a.astype(float) - b.astype(float)).max(-1).mean() < config.signature_tolerance * 256.0:
                expected = True
            else:
                run = longest_match_run_dp(a, b, config.pixel_match_tolerance)
                expected = run >= config.min_match_run_fraction * a.shape[0]
            assert got == expected
