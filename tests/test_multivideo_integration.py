"""Large integration test: a database over many genre-diverse videos."""

import numpy as np
import pytest

from repro.synth.genres import GENRE_MODELS, generate_genre_clip
from repro.vdbms.database import VideoDatabase
from repro.workloads.taxonomy import VideoCategory

_LINEUP = (
    ("drama", "evening-drama", VideoCategory(genres=("melodrama",), forms=("television series",))),
    ("news", "six-oclock-news", VideoCategory(genres=("journalism",), forms=("newsreel",))),
    ("sports", "cup-final", VideoCategory(genres=("sports-genre",), forms=("television",))),
    ("documentary", "deep-sea", VideoCategory(genres=("nature",), forms=("documentary-form",))),
    ("commercials", "ad-break", VideoCategory(genres=("show business",), forms=("commercial-form",))),
    ("music_video", "chart-hit", VideoCategory(genres=("musical",), forms=("music video-form",))),
)


@pytest.fixture(scope="module")
def library():
    """Six videos, six genres, ingested into one database."""
    db = VideoDatabase()
    for genre, name, category in _LINEUP:
        clip, truth = generate_genre_clip(
            GENRE_MODELS[genre], name, n_shots=10, seed=hash(name) % 10_000
        )
        db.ingest(clip, category=category, archetypes=truth.archetypes_for_ranges)
    return db


class TestLibraryState:
    def test_all_videos_cataloged(self, library):
        assert len(library.catalog) == 6
        assert set(library.catalog.ids()) == {name for _, name, _ in _LINEUP}

    def test_every_video_has_tree_and_index_rows(self, library):
        for entry in library.catalog:
            tree = library.scene_tree(entry.video_id)
            tree.validate()
            assert tree.n_shots == entry.n_shots
            rows = [
                e for e in library.index.entries if e.video_id == entry.video_id
            ]
            assert len(rows) == entry.n_shots

    def test_index_sorted_by_d_v(self, library):
        d_vs = [e.d_v for e in library.index.entries]
        assert d_vs == sorted(d_vs)


class TestCrossVideoQueries:
    def test_queries_span_videos(self, library):
        """A broad query reaches shots from more than one video."""
        answer = library.query(var_ba=1.0, var_oa=1.0)
        videos = {m.video_id for m in answer.matches}
        assert len(videos) >= 2

    def test_category_scoping_restricts(self, library):
        sports = VideoCategory(genres=("sports-genre",), forms=("television",))
        answer = library.query(var_ba=1.0, var_oa=1.0, category=sports)
        assert all(m.video_id == "cup-final" for m in answer.matches)

    def test_every_probe_query_self_consistent(self, library):
        """Query-by-example never returns the probe itself and ranks a
        same-video twin first when one exists."""
        for entry in library.index.entries[::5]:
            answer = library.query_by_shot(
                entry.video_id, entry.shot_number, limit=5
            )
            assert all(
                (m.video_id, m.shot_number) != (entry.video_id, entry.shot_number)
                for m in answer.matches
            )

    def test_routes_stay_within_matching_video(self, library):
        answer = library.query(var_ba=1.0, var_oa=1.0, limit=10)
        for route in answer.routes:
            if route.node is not None:
                tree = library.scene_tree(route.entry.video_id)
                assert route.node in tree.nodes()


class TestLibraryPersistence:
    def test_round_trip_full_library(self, library, tmp_path):
        root = library.save(tmp_path / "library")
        loaded = VideoDatabase.load(root)
        assert set(loaded.catalog.ids()) == set(library.catalog.ids())
        # Queries agree before/after.
        probe = library.index.entries[3]
        before = library.query_by_shot(probe.video_id, probe.shot_number, limit=5)
        after = loaded.query_by_shot(probe.video_id, probe.shot_number, limit=5)
        assert [m.shot_id for m in before.matches] == [
            m.shot_id for m in after.matches
        ]
        # Categories survive.
        sports = VideoCategory(genres=("sports-genre",), forms=("television",))
        assert {e.video_id for e in loaded.catalog.in_category(sports)} == {
            "cup-final"
        }

    def test_trees_browsable_after_reload(self, library, tmp_path):
        root = library.save(tmp_path / "lib2")
        loaded = VideoDatabase.load(root)
        session = loaded.browse("deep-sea")
        while not session.current.is_leaf:
            session.descend(0)
        assert session.current.level == 0
