"""Tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import main
from repro.video.avi import write_avi
from repro.video.clip import VideoClip
from repro.video.io import write_rvid


@pytest.fixture(scope="module")
def demo_db(tmp_path_factory):
    """A demo database built once for the read-only commands."""
    db_dir = str(tmp_path_factory.mktemp("clidb"))
    assert main(["demo", "--db", db_dir]) == 0
    return db_dir


def _cut_clip(name="cli-clip"):
    frames = np.zeros((18, 60, 80, 3), dtype=np.uint8)
    frames[:9] = 60
    frames[9:] = 200
    return VideoClip(name, frames, fps=3.0)


class TestDemoAndInfo:
    def test_demo_builds_database(self, demo_db, capsys):
        assert main(["info", "--db", demo_db]) == 0
        out = capsys.readouterr().out
        assert "figure5" in out
        assert "friends-restaurant" in out

    def test_demo_is_idempotent(self, demo_db, capsys):
        assert main(["demo", "--db", demo_db]) == 0
        out = capsys.readouterr().out
        assert "already present" in out

    def test_info_on_missing_db(self, tmp_path, capsys):
        assert main(["info", "--db", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err


class TestIngest:
    def test_ingest_rvid(self, tmp_path, capsys):
        path = write_rvid(_cut_clip("rvid-clip"), tmp_path / "c.rvid")
        db_dir = str(tmp_path / "db")
        assert main(["ingest", str(path), "--db", db_dir]) == 0
        out = capsys.readouterr().out
        assert "2 shots" in out

    def test_ingest_avi_decimates(self, tmp_path, capsys):
        clip = _cut_clip("avi-clip")
        clip30 = VideoClip(
            "avi-clip", np.repeat(clip.frames, 10, axis=0), fps=30.0
        )
        path = write_avi(clip30, tmp_path / "c.avi")
        db_dir = str(tmp_path / "db")
        assert main(["ingest", str(path), "--db", db_dir]) == 0
        out = capsys.readouterr().out
        assert "18 frames" in out  # 180 @ 30fps -> 18 @ 3fps

    def test_ingest_with_category(self, tmp_path, capsys):
        path = write_rvid(_cut_clip("cat-clip"), tmp_path / "c.rvid")
        db_dir = str(tmp_path / "db")
        assert main(
            ["ingest", str(path), "--db", db_dir, "--genre", "comedy"]
        ) == 0
        assert main(["info", "--db", db_dir]) == 0
        assert "comedy feature" in capsys.readouterr().out

    def test_ingest_unsupported_format(self, tmp_path, capsys):
        bad = tmp_path / "movie.mp4"
        bad.write_bytes(b"x")
        assert main(["ingest", str(bad), "--db", str(tmp_path / "db")]) == 1
        assert "unsupported" in capsys.readouterr().err


class TestReadCommands:
    def test_shots(self, demo_db, capsys):
        assert main(["shots", "figure5", "--db", demo_db]) == 0
        out = capsys.readouterr().out
        assert "#1@figure5" in out and "#10@figure5" in out

    def test_shots_unknown_video(self, demo_db, capsys):
        assert main(["shots", "nope", "--db", demo_db]) == 1

    def test_tree(self, demo_db, capsys):
        assert main(["tree", "figure5", "--db", demo_db]) == 0
        out = capsys.readouterr().out
        assert "SN_1^1" in out and "height 3" in out

    def test_query_impression(self, demo_db, capsys):
        assert main(
            ["query", "background still, foreground calm, limit 3", "--db", demo_db]
        ) == 0
        out = capsys.readouterr().out
        assert "D^v" in out

    def test_query_example_form(self, demo_db, capsys):
        assert main(["query", "like shot 9 of figure5", "--db", demo_db]) == 0

    def test_query_bad_syntax(self, demo_db, capsys):
        assert main(["query", "backgroundzzz", "--db", demo_db]) == 1


class TestExperimentCommand:
    def test_runs_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "matches paper" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "table99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err


class TestBrowseCommand:
    def _run(self, demo_db, script, capsys):
        import io

        from repro.cli import _build_parser, _cmd_browse

        parser = _build_parser()
        args = parser.parse_args(["browse", "figure5", "--db", demo_db])
        code = _cmd_browse(args, input_stream=io.StringIO(script))
        return code, capsys.readouterr().out

    def test_navigation_session(self, demo_db, capsys):
        code, out = self._run(demo_db, "ls\ncd 0\npath\nup\nquit\n", capsys)
        assert code == 0
        assert "SN_5^2" in out          # root child listed
        assert "->" in out              # path printed

    def test_summary_and_story(self, demo_db, capsys):
        code, out = self._run(demo_db, "summary 3\ncd 1\nstory\nquit\n", capsys)
        assert code == 0
        assert out.count("frame") >= 5

    def test_error_recovery(self, demo_db, capsys):
        code, out = self._run(demo_db, "cd 99\nup\nup\nup\nup\nbogus\nquit\n", capsys)
        assert code == 0                # errors are reported, not fatal
        assert "error:" in out
        assert "unknown command" in out

    def test_eof_terminates(self, demo_db, capsys):
        code, _ = self._run(demo_db, "ls\n", capsys)  # no quit; EOF ends it
        assert code == 0


class TestStoryboardCommand:
    def test_writes_contact_sheet(self, tmp_path, capsys):
        path = write_rvid(_cut_clip("board-clip"), tmp_path / "c.rvid")
        out = tmp_path / "board.ppm"
        assert main(["storyboard", str(path), "-o", str(out)]) == 0
        assert out.exists()
        assert out.read_bytes().startswith(b"P6")
        assert "2 shots" in capsys.readouterr().out

    def test_default_output_path(self, tmp_path, capsys):
        path = write_rvid(_cut_clip("board2"), tmp_path / "c2.rvid")
        assert main(["storyboard", str(path)]) == 0
        assert (tmp_path / "c2.ppm").exists()


class TestRemoveCommand:
    def test_remove_round_trip(self, tmp_path, capsys):
        db_dir = str(tmp_path / "db")
        assert main(["demo", "--db", db_dir]) == 0
        assert main(["remove", "figure5", "--db", db_dir]) == 0
        out = capsys.readouterr().out
        assert "10 index entries" in out
        assert main(["info", "--db", db_dir]) == 0
        info = capsys.readouterr().out
        assert "figure5" not in info
        assert "friends-restaurant" in info

    def test_remove_unknown(self, demo_db, capsys):
        assert main(["remove", "nope", "--db", demo_db]) == 1


class TestServeAndLoadgen:
    """End-to-end acceptance: `repro serve` + `repro loadgen` round trip."""

    def test_round_trip(self, tmp_path, capsys):
        import json
        import os
        import re
        import subprocess
        import sys

        env = dict(os.environ)
        src = str(
            __import__("pathlib").Path(__file__).resolve().parent.parent / "src"
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", "--workers", "2"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"on (http://[\d.]+:\d+)", banner)
            assert match, f"no server banner in {banner!r}"
            base_url = match.group(1)
            report_path = tmp_path / "loadgen.json"
            code = main(
                [
                    "loadgen",
                    "--url", base_url,
                    "--requests", "60",
                    "--workers", "3",
                    "--ingests", "1",
                    "--seed", "5",
                    "-o", str(report_path),
                ]
            )
            out = capsys.readouterr().out
            assert code == 0, out
            assert "0 failed" in out
            assert "server cache:" in out
            report = json.loads(report_path.read_text())
            assert report["failed_requests"] == 0
            assert report["ingest_failures"] == []
            assert report["server_metrics"]["query_cache"]["hits"] > 0
            assert report["server_metrics"]["requests"]["POST /query"]["count"] > 0
        finally:
            proc.terminate()
            proc.wait(timeout=10)
