"""Tests for the impression query language (repro.vdbms.query_language)."""

import pytest

from repro.errors import QueryError
from repro.vdbms.query_language import (
    IMPRESSION_LEVELS,
    ImpressionQuery,
    execute,
    parse_query,
)


class TestParsing:
    def test_qualitative_levels(self):
        query = parse_query("background calm, foreground busy")
        assert query.var_ba == IMPRESSION_LEVELS["calm"]
        assert query.var_oa == IMPRESSION_LEVELS["busy"]
        assert not query.is_example

    def test_order_free(self):
        query = parse_query("foreground still background frantic")
        assert query.var_ba == IMPRESSION_LEVELS["frantic"]
        assert query.var_oa == IMPRESSION_LEVELS["still"]

    def test_numeric_levels(self):
        query = parse_query("background ~16, foreground 100.5")
        assert query.var_ba == 16.0
        assert query.var_oa == 100.5

    def test_case_insensitive_keywords(self):
        query = parse_query("BACKGROUND Calm FOREGROUND Busy LIMIT 2")
        assert query.limit == 2

    def test_example_form(self):
        query = parse_query('like shot 12 of "Wag the Dog"')
        assert query.is_example
        assert query.example_video == "Wag the Dog"
        assert query.example_shot == 12

    def test_category_clause(self):
        query = parse_query("background calm foreground calm in genre comedy")
        assert query.category is not None
        assert query.category.genres == ("comedy",)
        assert query.category.forms == ("feature",)  # default form

    def test_multiword_genre_and_form(self):
        query = parse_query(
            "background calm foreground calm "
            "in genre science fiction form television series"
        )
        assert query.category.genres == ("science fiction",)
        assert query.category.forms == ("television series",)

    def test_limit_clause(self):
        assert parse_query("background calm foreground calm limit 7").limit == 7

    def test_all_clauses_together(self):
        query = parse_query(
            'like shot 3 of "Simon Birch", in genre adaptation, limit 5'
        )
        assert query.is_example and query.limit == 5
        assert query.category.genres == ("adaptation",)


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "background calm",                      # missing foreground
            "background calm background busy",      # duplicate area
            "background sideways foreground calm",  # unknown level
            "like shot x of m",                     # bad shot number
            "background calm foreground calm limit 0",
            "background calm foreground calm in genre jazzercise",
            "background calm foreground calm in genre comedy form betamax",
            "background calm foreground calm frobnicate",
            'like shot 3 of "unterminated',
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(QueryError):
            parse_query(text)


class TestExecution:
    @pytest.fixture(scope="class")
    def db(self, figure5):
        from repro.vdbms.database import VideoDatabase

        clip, _ = figure5
        database = VideoDatabase()
        database.ingest(clip)
        return database

    def test_impression_query_runs(self, db):
        answer = db.ask("background still, foreground calm, limit 5")
        # The static A/B/C shots have Var^BA ~ 0: they match.
        assert len(answer.matches) >= 1
        assert all(m.features.var_ba < 5 for m in answer.matches)

    def test_example_query_runs(self, db):
        answer = db.ask("like shot 9 of figure5, limit 3")
        assert all(
            not (m.video_id == "figure5" and m.shot_number == 9)
            for m in answer.matches
        )

    def test_execute_function_equals_method(self, db):
        text = "background still foreground calm limit 2"
        via_method = db.ask(text)
        via_function = execute(db, text)
        assert [m.shot_id for m in via_method.matches] == [
            m.shot_id for m in via_function.matches
        ]

    def test_dataclass_shape(self):
        query = ImpressionQuery(var_ba=1.0, var_oa=2.0)
        assert not query.is_example


class TestParsingProperties:
    """Property-style round trips through the parser."""

    def test_every_level_name_parses(self):
        for level, value in IMPRESSION_LEVELS.items():
            query = parse_query(f"background {level} foreground {level}")
            assert query.var_ba == value
            assert query.var_oa == value

    def test_numeric_round_trip(self):
        import random

        rng = random.Random(7)
        for _ in range(25):
            ba = round(rng.uniform(0, 500), 2)
            oa = round(rng.uniform(0, 500), 2)
            limit = rng.randint(1, 50)
            query = parse_query(
                f"background {ba} foreground {oa} limit {limit}"
            )
            assert query.var_ba == ba
            assert query.var_oa == oa
            assert query.limit == limit

    def test_every_known_genre_parses(self):
        from repro.workloads.taxonomy import GENRES

        for genre in GENRES:
            query = parse_query(
                f"background calm foreground calm in genre {genre}"
            )
            assert query.category.genres == (genre,)

    def test_every_known_form_parses(self):
        from repro.workloads.taxonomy import FORMS, GENRES

        for form in FORMS:
            query = parse_query(
                f"background calm foreground calm in genre {GENRES[0]} form {form}"
            )
            assert query.category.forms == (form,)

    def test_quoted_video_names_round_trip(self):
        for name in ("Wag the Dog", "a 'quoted' name", "夜のニュース"):
            query = parse_query(f'like shot 4 of "{name}"')
            assert query.example_video == name
