"""Coordinator behavior: routing, scatter-gather, degradation, service.

The fault-tolerance contract under test: killing a shard mid-flight
turns its contribution into a ``shards_failed`` entry — a *partial*
answer with HTTP 200 — never an exception, never a 500.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cluster import CLUSTER_MANIFEST, ClusterCoordinator
from repro.errors import (
    CatalogError,
    ClusterError,
    ShardUnavailableError,
)
from repro.service.engine import ServiceEngine
from repro.service.resilience import Deadline
from repro.service.server import create_server
from repro.testing.synth import add_synth_video
from repro.vdbms.database import VideoDatabase

pytestmark = pytest.mark.cluster


def make_record(video_id: str, seed: int):
    """One synthetic video's derived state, detached for adopt()."""
    scratch = VideoDatabase()
    add_synth_video(scratch, video_id, np.random.default_rng(seed))
    return scratch.export_video(video_id)


def populate(cluster: ClusterCoordinator, n: int, seed0: int = 0) -> list[str]:
    ids = [f"clip-{seed0 + k:03d}" for k in range(n)]
    for k, video_id in enumerate(ids):
        cluster.adopt(make_record(video_id, seed0 + k))
    return ids


class TestRoutingAndPlacement:
    def test_ingest_lands_on_the_ring_home(self):
        cluster = ClusterCoordinator.ephemeral(3)
        ids = populate(cluster, 10)
        for video_id in ids:
            home = cluster.router.shard_for(video_id)
            assert video_id in cluster.shards[home].db.catalog
            assert cluster.locate(video_id).shard_id == home

    def test_duplicate_id_rejected_cluster_wide(self):
        cluster = ClusterCoordinator.ephemeral(2)
        record = make_record("dup", 1)
        cluster.adopt(record)
        with pytest.raises(CatalogError):
            cluster.adopt(record)

    def test_failed_adopt_releases_the_claim(self):
        cluster = ClusterCoordinator.ephemeral(2)
        record = make_record("flaky", 2)
        shard = cluster.shard(cluster.router.shard_for("flaky"))
        shard.mark_down("test")
        with pytest.raises(ShardUnavailableError):
            cluster.adopt(record)
        shard.mark_up()
        cluster.adopt(record)  # the claim was rolled back
        assert "flaky" in cluster

    def test_remove_updates_placement(self):
        cluster = ClusterCoordinator.ephemeral(2)
        populate(cluster, 4)
        assert cluster.remove("clip-001") > 0
        assert "clip-001" not in cluster
        with pytest.raises(CatalogError):
            cluster.locate("clip-001")

    def test_unknown_shard_id_raises(self):
        cluster = ClusterCoordinator.ephemeral(2)
        with pytest.raises(ClusterError):
            cluster.shard(5)


class TestScatterGather:
    """Each degradation behavior must hold for both scatter strategies
    (pooled on multi-core hosts, inline on single-core — see
    ``ClusterCoordinator.parallel_scatter``)."""

    @pytest.mark.parametrize("parallel", [False, True])
    def test_healthy_cluster_answers_fully(self, parallel):
        cluster = ClusterCoordinator.ephemeral(4)
        cluster.parallel_scatter = parallel
        populate(cluster, 12)
        probe = cluster.shards[0].db.index.entries[0]
        answer = cluster.query(probe.features.var_ba, probe.features.var_oa)
        assert answer.shards_queried == 4
        assert answer.shards_failed == []
        assert not answer.partial
        assert len(answer.matches) == len(answer.routes)

    @pytest.mark.parametrize("parallel", [False, True])
    def test_down_shard_degrades_to_partial(self, parallel):
        cluster = ClusterCoordinator.ephemeral(3)
        cluster.parallel_scatter = parallel
        populate(cluster, 9)
        cluster.shards[1].mark_down("chaos test")
        probe = cluster.shards[0].db.index.entries[0]
        answer = cluster.query(probe.features.var_ba, probe.features.var_oa)
        assert answer.partial
        assert answer.shards_queried == 2
        [failure] = answer.shards_failed
        assert failure["shard"] == "shard-1"
        assert failure["reason"] == "down"
        # No match from the dead shard leaked in.
        dead_ids = set(cluster.shards[1].db.catalog.ids())
        assert all(m.video_id not in dead_ids for m in answer.matches)

    @pytest.mark.parametrize("parallel", [False, True])
    def test_shard_error_degrades_to_partial(self, parallel):
        cluster = ClusterCoordinator.ephemeral(2)
        cluster.parallel_scatter = parallel
        populate(cluster, 6)

        def boom(*args, **kwargs):
            raise RuntimeError("shard exploded")

        cluster.shards[0].db.query = boom
        answer = cluster.query(1.0, 1.0)
        assert answer.partial
        [failure] = answer.shards_failed
        assert failure["reason"] == "error"
        assert "shard exploded" in failure["error"]
        assert cluster.shards[0].errors == 1

    @pytest.mark.parametrize("parallel", [False, True])
    def test_exhausted_deadline_reports_every_shard(self, parallel):
        cluster = ClusterCoordinator.ephemeral(2)
        cluster.parallel_scatter = parallel
        populate(cluster, 4)
        spent = Deadline.after_ms(0.0001)
        answer = cluster.query(1.0, 1.0, deadline=spent)
        # Nothing crashed: whatever missed the budget is accounted for.
        assert answer.shards_queried + len(answer.shards_failed) == 2

    def test_scatter_strategies_agree(self):
        cluster = ClusterCoordinator.ephemeral(3)
        populate(cluster, 12)
        probes = [
            (e.features.var_ba, e.features.var_oa)
            for e in cluster.shards[0].db.index.entries[:4]
        ]
        for var_ba, var_oa in probes:
            cluster.parallel_scatter = False
            serial = cluster.query(var_ba, var_oa, limit=5)
            cluster.parallel_scatter = True
            pooled = cluster.query(var_ba, var_oa, limit=5)
            assert [
                (m.video_id, m.shot_number) for m in serial.matches
            ] == [(m.video_id, m.shot_number) for m in pooled.matches]
            assert [r.suggestion for r in serial.routes] == [
                r.suggestion for r in pooled.routes
            ]

    def test_query_by_shot_on_down_owner_raises(self):
        cluster = ClusterCoordinator.ephemeral(2)
        populate(cluster, 4)
        video_id = cluster.video_ids()[0]
        cluster.locate(video_id).mark_down("owner dead")
        with pytest.raises(ShardUnavailableError):
            cluster.query_by_shot(video_id, 1)

    def test_query_by_shot_unknown_video(self):
        cluster = ClusterCoordinator.ephemeral(2)
        with pytest.raises(CatalogError):
            cluster.query_by_shot("nope", 1)


class TestDurableLifecycle:
    def test_create_open_round_trip(self, tmp_path):
        cluster = ClusterCoordinator.create(tmp_path / "c", 3)
        ids = populate(cluster, 7)
        cluster.close()
        reopened = ClusterCoordinator.open(tmp_path / "c")
        assert reopened.catalog_size() == 7
        assert sorted(reopened.video_ids()) == sorted(ids)
        for video_id in ids:
            assert reopened.locate(video_id).shard_id == (
                reopened.router.shard_for(video_id)
            )
        reopened.close()

    def test_create_refuses_existing_cluster(self, tmp_path):
        ClusterCoordinator.create(tmp_path / "c", 2).close()
        with pytest.raises(ClusterError):
            ClusterCoordinator.create(tmp_path / "c", 2)

    def test_open_requires_manifest(self, tmp_path):
        with pytest.raises(ClusterError):
            ClusterCoordinator.open(tmp_path)

    def test_open_or_create_shard_count_mismatch(self, tmp_path):
        ClusterCoordinator.create(tmp_path / "c", 2).close()
        with pytest.raises(ClusterError, match="rebalance"):
            ClusterCoordinator.open_or_create(tmp_path / "c", 4)

    def test_manifest_is_json(self, tmp_path):
        ClusterCoordinator.create(tmp_path / "c", 2).close()
        payload = json.loads((tmp_path / "c" / CLUSTER_MANIFEST).read_text())
        assert payload["router"]["n_shards"] == 2


class TestServiceEngineClusterMode:
    def _engine(self, n_shards=3, **kwargs):
        cluster = ClusterCoordinator.ephemeral(n_shards)
        kwargs.setdefault("watchdog_interval", 0)
        kwargs.setdefault("n_workers", n_shards)
        return ServiceEngine(cluster, **kwargs), cluster

    def test_ingest_jobs_flow_through_shard_queues(self):
        engine, cluster = self._engine()
        try:
            jobs = [
                engine.submit_spec(
                    {"video_id": f"svc-{k}", "n_shots": 2, "seed": k}
                )
                for k in range(6)
            ]
            for job in jobs:
                assert engine.wait_for(job.job_id, timeout=60).status.value == "done"
            assert cluster.catalog_size() == 6
            assert engine.n_queues == 3
            # Jobs landed across shards, not all on queue 0.
            assert sum(s.ingests for s in cluster.shards) == 6
            assert sum(1 for s in cluster.shards if s.ingests) >= 2
        finally:
            engine.shutdown(timeout=10)

    def test_query_payload_carries_cluster_fields(self):
        engine, cluster = self._engine()
        try:
            populate(cluster, 6)
            payload, cached = engine.query(1.0, 1.0)
            assert payload["partial"] is False
            assert payload["shards_failed"] == []
            assert payload["shards_queried"] == 3
        finally:
            engine.shutdown(timeout=10)

    def test_partial_answers_are_not_cached(self):
        engine, cluster = self._engine()
        try:
            populate(cluster, 6)
            cluster.shards[0].mark_down("chaos")
            payload, cached = engine.query(2.0, 2.0)
            assert payload["partial"] is True and not cached
            # The same query again must recompute (no poisoned cache).
            payload2, cached2 = engine.query(2.0, 2.0)
            assert not cached2
            cluster.shards[0].mark_up()
            payload3, _ = engine.query(2.0, 2.0)
            assert payload3["partial"] is False
            assert engine.metrics.snapshot()["counters"][
                "cluster_partial_answers"
            ] == 2
        finally:
            engine.shutdown(timeout=10)

    def test_health_and_metrics_show_cluster_state(self):
        engine, cluster = self._engine()
        try:
            populate(cluster, 5)
            cluster.shards[2].mark_down("maintenance")
            health = engine.health_payload()
            assert health["videos"] == 5
            assert health["cluster"]["n_shards"] == 3
            assert health["cluster"]["shards_up"] == 2
            metrics = engine.metrics_payload()
            assert metrics["cluster"]["shards_up"] == 2
            assert len(metrics["cluster"]["shards"]) == 3
        finally:
            engine.shutdown(timeout=10)

    def test_catalog_and_tree_views_span_shards(self):
        engine, cluster = self._engine()
        try:
            ids = populate(cluster, 6)
            catalog = engine.catalog_payload()
            assert catalog["count"] == 6
            assert sorted(v["video_id"] for v in catalog["videos"]) == sorted(ids)
            shots = engine.shots_payload(ids[0])
            assert shots["count"] > 0
            tree = engine.tree_payload(ids[0])
            assert tree["n_shots"] == shots["count"]
        finally:
            engine.shutdown(timeout=10)


def _get(base_url: str, path: str):
    try:
        with urllib.request.urlopen(base_url + path, timeout=30) as response:
            return response.status, json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


class TestHTTPFaultContract:
    def test_killed_shard_yields_partial_200_never_500(self):
        cluster = ClusterCoordinator.ephemeral(3)
        populate(cluster, 9)
        engine = ServiceEngine(cluster, n_workers=3, watchdog_interval=0)
        server = create_server(engine)
        host, port = server.server_address[:2]
        base_url = f"http://{host}:{port}"
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, full = _get(base_url, "/query?var_ba=1.0&var_oa=1.0")
            assert status == 200 and full["partial"] is False

            cluster.shards[0].mark_down("killed mid-flight")
            # A fresh query point (the first answer is legitimately
            # cached — it was complete when computed).
            status, partial = _get(base_url, "/query?var_ba=2.0&var_oa=3.0")
            assert status == 200
            assert partial["partial"] is True
            assert partial["shards_failed"][0]["shard"] == "shard-0"

            # A per-video endpoint whose owner is down degrades to a
            # structured 503, not a 500.
            on_dead = next(
                v
                for v in cluster.video_ids()
                if cluster.router.shard_for(v) == 0
            )
            status, body = _get(base_url, f"/videos/{on_dead}/shots")
            assert status == 503
            assert body["reason"] == "shard_down"

            # Health keeps answering and reports the outage.
            status, health = _get(base_url, "/health")
            assert status == 200
            assert health["cluster"]["shards_up"] == 2
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            engine.shutdown(timeout=10)
