"""Tests for the extended (per-channel) similarity model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.config import QueryConfig
from repro.errors import IndexError_, ShotError
from repro.features.extended import (
    ExtendedFeatureVector,
    extract_extended_features,
)
from repro.index.extended import ExtendedEntry, ExtendedVarianceIndex


def _vector(ba=(4.0, 4.0, 4.0), oa=(1.0, 1.0, 1.0)):
    return ExtendedFeatureVector(var_ba_rgb=ba, var_oa_rgb=oa)


class TestExtendedFeatureVector:
    def test_base_projection_is_channel_mean(self):
        vector = _vector(ba=(3.0, 6.0, 9.0), oa=(0.0, 0.0, 3.0))
        assert vector.base.var_ba == pytest.approx(6.0)
        assert vector.base.var_oa == pytest.approx(1.0)

    def test_per_channel_d_v(self):
        vector = _vector(ba=(16.0, 4.0, 1.0), oa=(9.0, 4.0, 0.0))
        assert np.allclose(vector.d_v_rgb, [4 - 3, 0, 1])

    def test_rejects_negative(self):
        with pytest.raises(ShotError):
            _vector(ba=(-1.0, 0.0, 0.0))

    def test_distance_to_self_zero(self):
        vector = _vector()
        assert vector.distance(vector) == 0.0

    def test_matches_symmetric(self):
        a = _vector(ba=(16.0, 16.0, 16.0))
        b = _vector(ba=(20.25, 20.25, 20.25))
        assert a.matches(b, 1.0, 1.0) == b.matches(a, 1.0, 1.0)

    def test_channel_difference_discriminates(self):
        """Equal averaged variances, different channels: the base model
        matches, the extended model refuses — the Sec. 6 gain."""
        red_flicker = _vector(ba=(27.0, 0.0, 0.0), oa=(0.0, 0.0, 0.0))
        blue_flicker = _vector(ba=(0.0, 0.0, 27.0), oa=(0.0, 0.0, 0.0))
        assert red_flicker.base.var_ba == blue_flicker.base.var_ba
        # Base model: identical (Var, D^v) -> matches trivially.
        assert abs(red_flicker.base.d_v - blue_flicker.base.d_v) < 1e-9
        # Extended model: sqrt(27) > 5 apart per channel -> no match.
        assert not red_flicker.matches(blue_flicker, 1.0, 1.0)

    @given(
        st.tuples(*(st.floats(min_value=0, max_value=400),) * 3),
        st.tuples(*(st.floats(min_value=0, max_value=400),) * 3),
    )
    def test_property_reflexive_match(self, ba, oa):
        vector = _vector(ba=ba, oa=oa)
        assert vector.matches(vector, 0.0, 0.0)


class TestExtraction:
    def test_extract_from_detection(self, figure5_detection):
        vectors = extract_extended_features(figure5_detection)
        assert len(vectors) == figure5_detection.n_shots
        from repro.features.vector import extract_shot_features

        base_vectors = extract_shot_features(figure5_detection)
        for extended, base in zip(vectors, base_vectors):
            assert extended.base.var_ba == pytest.approx(base.var_ba)
            assert extended.base.var_oa == pytest.approx(base.var_oa)


class TestExtendedIndex:
    def _index(self):
        index = ExtendedVarianceIndex()
        index._entries = [  # direct seeding for unit-level control
            ExtendedEntry("v", 1, _vector(ba=(16.0, 16.0, 16.0)), "a"),
            ExtendedEntry("v", 2, _vector(ba=(20.25, 20.25, 20.25)), "a"),
            ExtendedEntry("v", 3, _vector(ba=(100.0, 100.0, 100.0)), "b"),
        ]
        return index

    def test_search_matches_and_ranks(self):
        index = self._index()
        probe = _vector(ba=(16.0, 16.0, 16.0))
        results = index.search(probe)
        assert [e.shot_number for e in results] == [1, 2]

    def test_exclude_shot(self):
        index = self._index()
        probe = _vector(ba=(16.0, 16.0, 16.0))
        results = index.search(probe, exclude_shot=("v", 1))
        assert [e.shot_number for e in results] == [2]

    def test_limit(self):
        index = self._index()
        probe = _vector(ba=(16.0, 16.0, 16.0))
        assert len(index.search(probe, limit=1)) == 1

    def test_lookup_missing(self):
        with pytest.raises(IndexError_):
            self._index().lookup("v", 9)

    def test_add_detection_result(self, figure5_detection):
        index = ExtendedVarianceIndex()
        entries = index.add_detection_result(figure5_detection, video_id="f5")
        assert len(entries) == figure5_detection.n_shots
        assert index.lookup("f5", 1).shot_id == "#1@f5"

    def test_raw_boxes_no_looser_than_base(self, figure5_detection):
        """With the raw per-channel boxes (scale 1.0), a match implies
        the base-model quantities are within tolerance too, by the
        reverse triangle inequality on the channel RMS."""
        index = ExtendedVarianceIndex()
        index.add_detection_result(figure5_detection, video_id="f5")
        config = QueryConfig()
        for probe in index.entries:
            for match in index.search(
                probe.features,
                config=config,
                exclude_shot=(probe.video_id, probe.shot_number),
                channel_tolerance_scale=1.0,
            ):
                base_probe = probe.features.base
                base_match = match.features.base
                assert abs(base_probe.sqrt_var_ba - base_match.sqrt_var_ba) <= (
                    config.beta + 1e-6
                )
