"""Tests for the trailer workload (titles + content + credits)."""

import pytest

from repro.eval.sbd_metrics import score_boundaries
from repro.sbd import CameraTrackingDetector, classify_shot_motion
from repro.sbd.motion import CameraMotion
from repro.scenetree.builder import SceneTreeBuilder
from repro.workloads.trailer import make_trailer_clip


@pytest.fixture(scope="module")
def trailer():
    clip, truth = make_trailer_clip()
    detection = CameraTrackingDetector().detect(clip)
    return clip, truth, detection


class TestTrailerStructure:
    def test_six_scripted_shots(self, trailer):
        _, truth, _ = trailer
        assert truth.n_shots == 6
        assert truth.groups[0] == "card"
        assert truth.groups[-1] == "credits"

    def test_fades_and_dissolves_present(self, trailer):
        clip, truth, _ = trailer
        # Fades insert extra frames beyond the scripted shot lengths.
        assert len(clip) > sum(e - s for s, e in truth.shot_ranges) - 1

    def test_deterministic(self):
        a, _ = make_trailer_clip(seed=11)
        b, _ = make_trailer_clip(seed=11)
        import numpy as np

        assert np.array_equal(a.frames, b.frames)


class TestTrailerDetection:
    def test_detection_quality(self, trailer):
        _, truth, detection = trailer
        score = score_boundaries(truth.boundaries, detection.boundaries, 1)
        # Gradual transitions cost some recall; precision stays high.
        assert score.recall >= 0.6
        assert score.precision >= 0.8

    def test_credit_roll_not_fragmented(self, trailer):
        _, truth, detection = trailer
        credits_start, credits_stop = truth.shot_ranges[-1]
        inside = [
            b for b in detection.boundaries if credits_start + 2 < b < credits_stop
        ]
        assert inside == []

    def test_credits_classified_as_tilt(self, trailer):
        _, truth, detection = trailer
        last_shot = detection.shots[-1]
        estimate = classify_shot_motion(detection, last_shot)
        assert estimate.motion is CameraMotion.TILT

    def test_title_cards_classified_static(self, trailer):
        _, _, detection = trailer
        first = classify_shot_motion(detection, detection.shots[0])
        assert first.motion is CameraMotion.STATIC

    def test_scene_tree_builds(self, trailer):
        _, _, detection = trailer
        tree = SceneTreeBuilder().build_from_detection(detection)
        tree.validate()
        assert tree.n_shots == detection.n_shots
