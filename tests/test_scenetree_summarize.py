"""Tests for video summarization (repro.scenetree.summarize)."""

import pytest

from repro.errors import SceneTreeError
from repro.scenetree.builder import SceneTreeBuilder
from repro.scenetree.summarize import (
    default_g,
    scene_representatives,
    summarize_tree,
)


@pytest.fixture(scope="module")
def built(figure5_detection):
    tree = SceneTreeBuilder().build_from_detection(figure5_detection)
    return tree, figure5_detection


class TestDefaultG:
    @pytest.mark.parametrize("shots,expected", [(1, 1), (2, 2), (4, 2), (9, 3), (16, 4)])
    def test_sqrt_growth(self, shots, expected):
        assert default_g(shots) == expected

    def test_at_least_one(self):
        assert default_g(0) == 1


class TestSceneRepresentatives:
    def test_leaf_gives_its_own_representative(self, built):
        tree, detection = built
        leaf = tree.node_for_shot(0)
        frames = scene_representatives(leaf, detection)
        assert len(frames) == 1
        assert frames[0] == leaf.representative_frame

    def test_scene_node_pools_its_shots(self, built):
        tree, detection = built
        scene = tree.node_for_shot(0).parent  # EN1: shots 1-4
        frames = scene_representatives(scene, detection)
        assert len(frames) == default_g(4) == 2
        # Every frame lies inside the scene's span.
        for frame in frames:
            assert 0 <= frame < detection.shots[3].stop

    def test_custom_g(self, built):
        tree, detection = built
        frames = scene_representatives(tree.root, detection, g=lambda s: 5)
        assert len(frames) == 5
        assert len(set(frames)) == 5

    def test_frames_in_clip_coordinates(self, built):
        tree, detection = built
        d_scene = tree.node_for_shot(7).parent  # EN4: shots 8-10
        frames = scene_representatives(d_scene, detection)
        assert all(frame >= detection.shots[7].start for frame in frames)


class TestSummarizeTree:
    def test_budget_respected(self, built):
        tree, _ = built
        for budget in (1, 3, 8):
            summary = summarize_tree(tree, budget)
            assert len(summary) <= budget

    def test_no_duplicate_frames(self, built):
        tree, _ = built
        summary = summarize_tree(tree, 50)
        frames = [frame for _, frame in summary]
        assert len(frames) == len(set(frames))

    def test_top_down_order(self, built):
        tree, _ = built
        summary = summarize_tree(tree, 50)
        levels = [int(label.rsplit("^", 1)[1]) for label, _ in summary]
        assert levels == sorted(levels, reverse=True)

    def test_budget_one_gives_root_view(self, built):
        tree, _ = built
        summary = summarize_tree(tree, 1)
        assert summary[0][0] == tree.root.label

    def test_rejects_zero_budget(self, built):
        tree, _ = built
        with pytest.raises(SceneTreeError):
            summarize_tree(tree, 0)

    def test_deeper_budget_adds_new_content(self, built):
        tree, _ = built
        small = {frame for _, frame in summarize_tree(tree, 2)}
        large = {frame for _, frame in summarize_tree(tree, 10)}
        assert small <= large
        assert len(large) > len(small)
