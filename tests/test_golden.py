"""Golden-corpus regression: the pipeline's outputs are frozen.

Three seeded synthetic clips (see :mod:`repro.testing.golden`) have
their ``Sign^BA``/``Sign^OA`` streams, shot boundaries, and per-shot
``(Var^BA, Var^OA, D^v)`` stored as JSON fixtures under
``tests/golden/``.  Both extraction paths — the fused linear operators
and the legacy multi-pass reference — must reproduce the fixtures
byte-exactly; any numerical drift in either path fails here first.
"""

from pathlib import Path

import pytest

from repro.config import ExtractionConfig
from repro.testing.golden import (
    GOLDEN_SPECS,
    canonical_json,
    expected_payload,
    fixture_name,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

_EXTRACTION = {
    "fused": ExtractionConfig(),
    "legacy": ExtractionConfig(use_fused=False),
}


def test_corpus_has_three_clips_with_fixtures():
    assert len(GOLDEN_SPECS) == 3
    for spec in GOLDEN_SPECS:
        assert (GOLDEN_DIR / fixture_name(spec)).is_file(), (
            f"missing fixture for {spec.name!r}; regenerate with "
            "'python tests/golden/make_golden.py'"
        )


@pytest.mark.parametrize("mode", sorted(_EXTRACTION))
@pytest.mark.parametrize("spec", GOLDEN_SPECS, ids=lambda s: s.name)
def test_pipeline_matches_fixture_byte_exactly(spec, mode):
    live = canonical_json(expected_payload(spec, _EXTRACTION[mode]))
    fixture = (GOLDEN_DIR / fixture_name(spec)).read_text(encoding="utf-8")
    assert live == fixture, (
        f"{spec.name} ({mode} extraction) diverged from its fixture; if "
        "the change is intentional, regenerate with "
        "'python tests/golden/make_golden.py'"
    )


@pytest.mark.parametrize("spec", GOLDEN_SPECS, ids=lambda s: s.name)
def test_fixture_is_internally_consistent(spec):
    import json

    payload = json.loads((GOLDEN_DIR / fixture_name(spec)).read_text())
    assert payload["spec"]["n_shots"] == len(payload["shots"])
    assert len(payload["boundaries"]) == len(payload["shots"]) - 1
    assert len(payload["signs_ba"]) == payload["n_frames"]
    assert len(payload["signs_oa"]) == payload["n_frames"]
    for shot, boundary in zip(payload["shots"][1:], payload["boundaries"]):
        assert shot["start"] == boundary
