"""Tests for the scene-tree construction algorithm (Sec. 3.1, Fig. 6)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SceneTreeConfig
from repro.errors import SceneTreeError
from repro.scenetree.builder import SceneTreeBuilder


def _stream(value, n=6):
    return np.full((n, 3), value, dtype=np.uint8)


def _figure5_signs():
    """Ten constant sign streams mirroring the Fig. 5 groups.

    Same scene letter → values within the 10 % tolerance; different
    letters → far apart.
    """
    base = {"A": 200, "B": 120, "C": 60, "D": 20}
    spec = [("A", 0), ("B", 0), ("A", 1), ("B", 1), ("C", 0),
            ("A", 2), ("C", 1), ("D", 0), ("D", 1), ("D", 2)]
    lengths = [10, 6, 8, 7, 12, 9, 11, 10, 8, 9]
    return [
        _stream(base[letter] + variant * 8, n)
        for (letter, variant), n in zip(spec, lengths)
    ]


class TestFigure6Reproduction:
    """The paper's complete worked example, node by node."""

    @pytest.fixture()
    def built(self):
        builder = SceneTreeBuilder()
        tree = builder.build(_figure5_signs(), clip_name="fig5")
        return builder, tree

    def test_trace_matches_paper(self, built):
        builder, _ = built
        measured = [
            (s.shot_index + 1, None if s.related_to is None else s.related_to + 1, s.scenario)
            for s in builder.trace
        ]
        assert measured == [
            (3, 1, 1), (4, 2, 2), (5, None, 0), (6, 3, 3),
            (7, 5, 2), (8, None, 0), (9, 8, 2), (10, 8, 2),
        ]

    def test_shot9_used_fallback(self, built):
        builder, _ = built
        step9 = builder.trace[6]
        assert step9.shot_index == 8 and step9.via_fallback

    def test_en1_groups_shots_1_to_4(self, built):
        _, tree = built
        parent = tree.node_for_shot(0).parent
        members = [leaf.shot_index for leaf in parent.children]
        assert members == [0, 1, 2, 3]

    def test_en2_groups_shots_5_to_7(self, built):
        _, tree = built
        parent = tree.node_for_shot(4).parent
        assert [leaf.shot_index for leaf in parent.children] == [4, 5, 6]

    def test_en4_groups_shots_8_to_10(self, built):
        _, tree = built
        parent = tree.node_for_shot(7).parent
        assert [leaf.shot_index for leaf in parent.children] == [7, 8, 9]

    def test_en3_joins_en1_and_en2(self, built):
        _, tree = built
        en1 = tree.node_for_shot(0).parent
        en2 = tree.node_for_shot(4).parent
        assert en1.parent is en2.parent
        assert en1.parent.level == 2

    def test_root_joins_en3_and_en4(self, built):
        _, tree = built
        en3 = tree.node_for_shot(0).parent.parent
        en4 = tree.node_for_shot(7).parent
        assert en3.parent is tree.root and en4.parent is tree.root
        assert tree.root.level == 3

    def test_naming_longest_run(self, built):
        """EN2 is named for shot#5 (12-frame constant run, the longest)."""
        _, tree = built
        en2 = tree.node_for_shot(4).parent
        assert en2.label == "SN_5^1"

    def test_tree_validates(self, built):
        _, tree = built
        tree.validate()


class TestEdgeCases:
    def test_single_shot(self):
        tree = SceneTreeBuilder().build([_stream(50)], clip_name="one")
        assert tree.n_shots == 1
        assert tree.height == 1
        assert tree.leaves[0].parent is tree.root

    def test_two_unrelated_shots(self):
        tree = SceneTreeBuilder().build([_stream(20), _stream(200)])
        assert tree.root.level == 1
        assert [leaf.parent for leaf in tree.leaves] == [tree.root, tree.root]

    def test_all_related_shots_single_scene(self):
        signs = [_stream(100 + k) for k in range(5)]
        tree = SceneTreeBuilder().build(signs)
        # One scene node over all leaves; no extra root layer on top.
        assert tree.height == 1
        assert len(tree.root.children) == 5

    def test_all_unrelated_shots(self):
        values = [10, 60, 110, 160, 210, 255]
        signs = [_stream(v) for v in values]
        tree = SceneTreeBuilder().build(signs)
        tree.validate()
        assert tree.n_shots == 6

    def test_empty_input_rejected(self):
        with pytest.raises(SceneTreeError):
            SceneTreeBuilder().build([])

    def test_fallback_disabled(self):
        """Without the i-1 fallback, shots 8-10 of Fig. 5 do not group."""
        config = SceneTreeConfig(compare_with_previous_fallback=False)
        builder = SceneTreeBuilder(config=config)
        tree = builder.build(_figure5_signs())
        # Shot #9 (index 8) finds no related shot among 1..7.
        step9 = [s for s in builder.trace if s.shot_index == 8][0]
        assert step9.related_to is None
        tree.validate()

    def test_exhaustive_relationship_mode(self):
        tree = SceneTreeBuilder(exhaustive_relationship=True).build(
            _figure5_signs()
        )
        tree.validate()
        assert tree.n_shots == 10

    def test_representative_frames_propagate(self):
        signs = [_stream(100), _stream(110), _stream(105)]
        tree = SceneTreeBuilder().build(signs)
        for node in tree.nodes():
            assert node.representative_frame is not None

    def test_build_from_detection_offsets_rep_frames(self, figure5_detection):
        tree = SceneTreeBuilder().build_from_detection(figure5_detection)
        tree.validate()
        for leaf, shot in zip(tree.leaves, figure5_detection.shots):
            assert leaf.representative_frame is not None
            assert shot.start <= leaf.representative_frame < shot.stop

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),   # scene id
                st.integers(min_value=1, max_value=8),   # length
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_property_always_valid_tree(self, scene_spec):
        """Any shot sequence yields a structurally valid tree covering
        every shot exactly once."""
        values = [20, 70, 120, 170, 220]
        signs = [_stream(values[scene], n) for scene, n in scene_spec]
        tree = SceneTreeBuilder().build(signs)
        tree.validate()
        assert tree.n_shots == len(scene_spec)
        leaf_ids = [n.node_id for n in tree.nodes() if n.is_leaf]
        assert sorted(leaf_ids) == sorted(leaf.node_id for leaf in tree.leaves)
