"""Tests for repro.features (Eqs. 3-6, the feature vector, D^v)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ShotError
from repro.features.variance import (
    shot_variance,
    sign_stream_mean,
    sign_stream_variance,
)
from repro.features.vector import FeatureVector, extract_shot_features


class TestVariance:
    def test_mean_uses_n_denominator(self):
        """Eq. 4 divides by l - k + 1 (the frame count)."""
        signs = np.array([[0, 0, 0], [10, 20, 30]], dtype=np.uint8)
        assert np.allclose(sign_stream_mean(signs), [5, 10, 15])

    def test_variance_uses_n_minus_one_denominator(self):
        """Eq. 3 divides by l - k (one less than the frame count)."""
        signs = np.array([[0, 0, 0], [10, 10, 10]], dtype=np.uint8)
        # Per channel: ((0-5)^2 + (10-5)^2) / 1 = 50.
        assert np.allclose(sign_stream_variance(signs), [50, 50, 50])

    def test_matches_numpy_sample_variance(self):
        rng = np.random.default_rng(11)
        signs = rng.integers(0, 255, size=(30, 3)).astype(np.uint8)
        assert np.allclose(
            sign_stream_variance(signs),
            np.var(signs.astype(np.float64), axis=0, ddof=1),
        )

    def test_single_frame_zero_variance(self):
        signs = np.array([[100, 150, 200]], dtype=np.uint8)
        assert np.allclose(sign_stream_variance(signs), 0.0)
        assert shot_variance(signs) == 0.0

    def test_constant_stream_zero_variance(self):
        """Paper property: Var == 0 means the area never changed."""
        signs = np.full((20, 3), 99, dtype=np.uint8)
        assert shot_variance(signs) == 0.0

    def test_scalar_is_channel_mean(self):
        signs = np.array([[0, 0, 0], [10, 20, 0]], dtype=np.uint8)
        per_channel = sign_stream_variance(signs)
        assert shot_variance(signs) == pytest.approx(per_channel.mean())

    def test_rejects_empty(self):
        with pytest.raises(ShotError):
            sign_stream_variance(np.zeros((0, 3)))

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=2, max_size=50))
    def test_property_nonnegative_and_bounded(self, values):
        signs = np.array([[v, v, v] for v in values], dtype=np.uint8)
        var = shot_variance(signs)
        assert var >= 0.0
        assert var <= 255.0 ** 2

    @given(
        st.lists(st.integers(min_value=0, max_value=200), min_size=2, max_size=30),
        st.integers(min_value=1, max_value=55),
    )
    def test_property_shift_invariant(self, values, shift):
        """Adding a constant to every sign leaves the variance unchanged."""
        a = np.array([[v, v, v] for v in values], dtype=np.uint8)
        b = a + shift
        assert shot_variance(a) == pytest.approx(shot_variance(b.astype(np.uint8)))


class TestFeatureVector:
    def test_d_v_definition(self):
        vector = FeatureVector(var_ba=16.0, var_oa=9.0)
        assert vector.d_v == pytest.approx(4.0 - 3.0)
        assert vector.sqrt_var_ba == 4.0
        assert vector.sqrt_var_oa == 3.0

    def test_d_v_can_be_negative(self):
        assert FeatureVector(var_ba=1.0, var_oa=9.0).d_v == pytest.approx(-2.0)

    def test_rejects_negative_variance(self):
        with pytest.raises(ShotError):
            FeatureVector(var_ba=-1.0, var_oa=0.0)

    def test_distance_in_plane(self):
        a = FeatureVector(var_ba=16.0, var_oa=9.0)   # (1, 4)
        b = FeatureVector(var_ba=25.0, var_oa=16.0)  # (1, 5)
        assert a.distance(b) == pytest.approx(1.0)

    @given(
        st.floats(min_value=0, max_value=1e4),
        st.floats(min_value=0, max_value=1e4),
    )
    def test_property_distance_to_self_zero(self, var_ba, var_oa):
        vector = FeatureVector(var_ba=var_ba, var_oa=var_oa)
        assert vector.distance(vector) == 0.0

    def test_d_v_bounded_by_sqrt_var_ba(self):
        """D^v <= sqrt(Var^BA) always (since sqrt(Var^OA) >= 0)."""
        vector = FeatureVector(var_ba=100.0, var_oa=0.0)
        assert vector.d_v <= vector.sqrt_var_ba


class TestExtractShotFeatures:
    def test_per_clip_extraction(self, figure5_detection):
        vectors = extract_shot_features(figure5_detection)
        assert len(vectors) == figure5_detection.n_shots
        for vector in vectors:
            assert vector.var_ba >= 0 and vector.var_oa >= 0

    def test_single_shot_extraction(self, figure5_detection):
        shot = figure5_detection.shots[0]
        vector = extract_shot_features(figure5_detection, shot)
        assert isinstance(vector, FeatureVector)
        all_vectors = extract_shot_features(figure5_detection)
        assert math.isclose(vector.var_ba, all_vectors[0].var_ba)

    def test_static_shots_have_low_var_ba(self, figure5_detection):
        """Figure 5's A/B/C shots are static: background barely changes."""
        vectors = extract_shot_features(figure5_detection)
        for k in range(7):  # shots A..C1
            assert vectors[k].var_ba < 5.0

    def test_d_group_lighting_raises_var_ba(self, figure5_detection):
        """The D takes have lighting ramps: clearly nonzero Var^BA."""
        vectors = extract_shot_features(figure5_detection)
        for k in (7, 8, 9):
            assert vectors[k].var_ba > 10.0
