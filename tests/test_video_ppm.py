"""Tests for PPM export (repro.video.ppm)."""

import numpy as np
import pytest

from repro.errors import VideoFormatError
from repro.scenetree.builder import SceneTreeBuilder
from repro.video.ppm import read_ppm, write_ppm, write_storyboard


class TestPpmRoundTrip:
    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(3)
        frame = rng.integers(0, 255, size=(17, 23, 3)).astype(np.uint8)
        path = write_ppm(frame, tmp_path / "f.ppm")
        assert np.array_equal(read_ppm(path), frame)

    def test_header_format(self, tmp_path):
        frame = np.zeros((4, 6, 3), dtype=np.uint8)
        path = write_ppm(frame, tmp_path / "f.ppm")
        header = path.read_bytes()[:20]
        assert header.startswith(b"P6\n6 4\n255\n")

    def test_read_with_comment(self, tmp_path):
        path = tmp_path / "c.ppm"
        payload = bytes(range(12)) * 1
        path.write_bytes(b"P6\n# a comment\n2 2\n255\n" + payload)
        frame = read_ppm(path)
        assert frame.shape == (2, 2, 3)
        assert frame[0, 0, 2] == 2

    def test_rejects_non_ppm(self, tmp_path):
        path = tmp_path / "x.ppm"
        path.write_bytes(b"JUNK")
        with pytest.raises(VideoFormatError):
            read_ppm(path)

    def test_rejects_truncated(self, tmp_path):
        frame = np.zeros((4, 6, 3), dtype=np.uint8)
        path = write_ppm(frame, tmp_path / "f.ppm")
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(VideoFormatError):
            read_ppm(path)

    def test_rejects_16bit(self, tmp_path):
        path = tmp_path / "deep.ppm"
        path.write_bytes(b"P6\n1 1\n65535\n\x00\x00\x00\x00\x00\x00")
        with pytest.raises(VideoFormatError):
            read_ppm(path)


class TestStoryboard:
    def test_friends_storyboard(self, friends, friends_detection, tmp_path):
        clip, _ = friends
        tree = SceneTreeBuilder().build_from_detection(friends_detection)
        path = write_storyboard(tree, clip, tmp_path / "board.ppm")
        sheet = read_ppm(path)
        # One row of thumbnails per tree level present in the tree.
        levels = {node.level for node in tree.nodes()}
        expected_rows = len(levels) * (60 + 4) + 4
        assert sheet.shape[0] == expected_rows
        # The sheet contains non-background content (thumbnails drawn).
        assert (sheet != 24).any()

    def test_thumbnail_grid_geometry(self, figure5, figure5_detection, tmp_path):
        clip, _ = figure5
        tree = SceneTreeBuilder().build_from_detection(figure5_detection)
        path = write_storyboard(
            tree, clip, tmp_path / "b.ppm", thumb_rows=30, thumb_cols=40, gap=2
        )
        sheet = read_ppm(path)
        # Ten leaves dominate the widest row.
        assert sheet.shape[1] == 10 * (40 + 2) + 2
