"""Property: the columnar engine is decision-identical to the legacy
searchers.

For 50 seeded corpora — tie-heavy by construction (variances drawn
from a small discrete grid, so many shots share exact ``D^v`` and
``sqrt(Var^BA)`` coordinates and the ``rank_key`` tie-break decides) —
every query must return exactly the same ranked entries from

* the linear scan (:func:`repro.index.query.search`),
* the legacy sorted index (:class:`SortedVarianceIndex`), and
* the columnar engine (:class:`ColumnarVarianceIndex`),

for every limit and exclusion variant, and a batch of B queries must
equal B sequential singles.  The same bar holds through the cluster:
batched scatter-gather answers match the single database during and
after a rebalance.
"""

from __future__ import annotations

import math
import threading

import numpy as np
import pytest

from repro.config import QueryConfig
from repro.errors import IndexError_
from repro.features.vector import FeatureVector
from repro.index import (
    ColumnarVarianceIndex,
    IndexEntry,
    SortedVarianceIndex,
    VarianceQuery,
)
from repro.index.query import search as scan_search
from repro.cluster import ClusterCoordinator, Rebalancer
from repro.testing.synth import add_synth_video
from repro.vdbms.database import VideoDatabase

#: A small discrete variance grid — adjacent queries land exactly on
#: band edges, and repeated values force rank ties that only the
#: rank_key tie-break (d_v, sqrt_ba, video_id, shot) resolves.
_GRID = [0.0, 1.0, 4.0, 9.0, 16.0, 25.0, 100.0, 144.0, 225.0]

#: Video ids whose lexicographic order differs from insertion order
#: (the columnar engine tie-breaks via an interned rank table, which
#: must reproduce *string* order, not intern order).
_VIDEOS = ["v-10", "v-2", "zz", "a b", "a/b", "a_b", "Movie", "movie"]


def _corpus(seed: int, n: int = 160) -> list[IndexEntry]:
    rng = np.random.default_rng(seed)
    entries = []
    for k in range(n):
        var_ba = float(rng.choice(_GRID))
        var_oa = float(rng.choice(_GRID))
        if rng.random() < 0.1:  # NaN-adjacent but legal: tiny/denormal
            var_ba = float(rng.choice([1e-300, 5e-324, 0.0]))
        entries.append(
            IndexEntry(
                video_id=str(rng.choice(_VIDEOS)),
                shot_number=k,
                start_frame=k * 10,
                end_frame=k * 10 + 9,
                features=FeatureVector(var_ba=var_ba, var_oa=var_oa),
                archetype=None if k % 3 else "closeup",
            )
        )
    return entries


def _queries(seed: int, entries: list[IndexEntry]) -> list[VarianceQuery]:
    rng = np.random.default_rng(seed + 1_000_003)
    queries = [
        VarianceQuery(
            var_ba=float(rng.choice(_GRID)), var_oa=float(rng.choice(_GRID))
        )
        for _ in range(4)
    ]
    # Probes placed exactly on entry coordinates: the distance-0 match
    # plus band edges that land exactly on other grid points.
    for entry in entries[:: max(1, len(entries) // 3)]:
        queries.append(VarianceQuery.from_features(entry.features))
    return queries


def _ids(entries: list[IndexEntry]) -> list[tuple[str, int]]:
    return [(e.video_id, e.shot_number) for e in entries]


@pytest.mark.parametrize("seed", range(50))
def test_columnar_matches_legacy_searchers(seed):
    entries = _corpus(seed)
    columnar = ColumnarVarianceIndex(entries)
    legacy = SortedVarianceIndex(entries)
    config = QueryConfig()
    for query in _queries(seed, entries):
        expected = scan_search(entries, query, config)
        assert _ids(legacy.search(query, config)) == _ids(expected)
        assert _ids(columnar.search(query, config)) == _ids(expected)
        for limit in (1, 3, 10):
            assert _ids(columnar.search(query, config, limit=limit)) == _ids(
                expected[:limit]
            )
        exclude = (entries[seed % len(entries)].video_id, seed % len(entries))
        assert _ids(columnar.search(query, config, exclude_shot=exclude)) == _ids(
            legacy.search(query, config, exclude_shot=exclude)
        )


@pytest.mark.parametrize("seed", range(0, 50, 7))
def test_tight_and_wide_tolerances_match(seed):
    entries = _corpus(seed)
    columnar = ColumnarVarianceIndex(entries)
    legacy = SortedVarianceIndex(entries)
    for config in (
        QueryConfig(alpha=0.0, beta=0.0),  # exact-coordinate matches only
        QueryConfig(alpha=0.5, beta=2.0),
        QueryConfig(alpha=50.0, beta=50.0),  # whole-corpus band
    ):
        for query in _queries(seed, entries)[:5]:
            assert _ids(columnar.search(query, config)) == _ids(
                legacy.search(query, config)
            )


@pytest.mark.parametrize("seed", range(50))
def test_batch_equals_sequential_singles(seed):
    entries = _corpus(seed)
    columnar = ColumnarVarianceIndex(entries)
    config = QueryConfig()
    queries = _queries(seed, entries)
    for limit in (None, 5):
        batched = columnar.search_batch(queries, config, limit=limit)
        singles = [columnar.search(q, config, limit=limit) for q in queries]
        assert [_ids(b) for b in batched] == [_ids(s) for s in singles]
    # Per-query exclusions (the query-by-example path).
    excludes = [
        (entries[k % len(entries)].video_id, entries[k % len(entries)].shot_number)
        if k % 2
        else None
        for k in range(len(queries))
    ]
    batched = columnar.search_batch(queries, config, limit=5, exclude_shots=excludes)
    singles = [
        columnar.search(q, config, limit=5, exclude_shot=ex)
        for q, ex in zip(queries, excludes)
    ]
    assert [_ids(b) for b in batched] == [_ids(s) for s in singles]


class TestPendingBuffer:
    def test_inserts_merge_at_threshold_and_on_read(self):
        index = ColumnarVarianceIndex(merge_threshold=8)
        mirror = SortedVarianceIndex()
        rng = np.random.default_rng(3)
        for k in range(30):
            entry = IndexEntry(
                video_id=f"v{k % 4}",
                shot_number=k,
                start_frame=0,
                end_frame=1,
                features=FeatureVector(
                    var_ba=float(rng.choice(_GRID)), var_oa=float(rng.choice(_GRID))
                ),
            )
            index.insert(entry)
            mirror.insert(entry)
            # Every read sees all pending inserts, merged or not.
            assert len(index) == k + 1
            query = VarianceQuery.from_features(entry.features)
            assert _ids(index.search(query)) == _ids(mirror.search(query))
        # Physical order within equal D^v is not part of the contract
        # (legacy insort_left reverses tie order, the columnar merge
        # keeps it) — the row *sets* and the sort invariant are.
        key = lambda row: (row["d_v"], row["shot"])
        assert sorted((e.to_row() for e in index.entries), key=key) == sorted(
            (e.to_row() for e in mirror.entries), key=key
        )
        d_vs = [e.d_v for e in index.entries]
        assert d_vs == sorted(d_vs)

    def test_remove_video_covers_pending_rows(self):
        index = ColumnarVarianceIndex(merge_threshold=1000)
        for k in range(10):
            index.insert(
                IndexEntry(
                    video_id="keep" if k % 2 else "drop",
                    shot_number=k,
                    start_frame=0,
                    end_frame=1,
                    features=FeatureVector(var_ba=float(k), var_oa=0.0),
                )
            )
        assert index.remove_video("drop") == 5
        assert index.remove_video("drop") == 0
        assert len(index) == 5
        assert all(e.video_id == "keep" for e in index.entries)


class TestContracts:
    def test_nan_entries_rejected_like_legacy(self):
        bad = IndexEntry(
            video_id="v",
            shot_number=1,
            start_frame=0,
            end_frame=1,
            features=FeatureVector(var_ba=math.inf, var_oa=math.inf),
        )
        with pytest.raises(IndexError_, match="NaN D\\^v"):
            ColumnarVarianceIndex([bad])
        with pytest.raises(IndexError_, match="NaN D\\^v"):
            ColumnarVarianceIndex().insert(bad)

    def test_range_scan_errors_match_legacy(self):
        columnar = ColumnarVarianceIndex()
        legacy = SortedVarianceIndex()
        for low, high in ((math.nan, 1.0), (1.0, math.nan)):
            with pytest.raises(IndexError_, match="must not be NaN"):
                columnar.range_scan(low, high)
            with pytest.raises(IndexError_, match="must not be NaN"):
                legacy.range_scan(low, high)
        with pytest.raises(IndexError_, match="empty range"):
            columnar.range_scan(2.0, 1.0)

    def test_range_scan_band_matches_legacy(self):
        entries = _corpus(9)
        columnar = ColumnarVarianceIndex(entries)
        legacy = SortedVarianceIndex(entries)
        for low, high in ((-5.0, 5.0), (0.0, 0.0), (2.0, 3.0), (100.0, 200.0)):
            assert [e.to_row() for e in columnar.range_scan(low, high)] == [
                e.to_row() for e in legacy.range_scan(low, high)
            ]

    def test_int32_overflow_rejected(self):
        with pytest.raises(IndexError_, match="int32"):
            ColumnarVarianceIndex().insert(
                IndexEntry(
                    video_id="v",
                    shot_number=2**31,
                    start_frame=0,
                    end_frame=1,
                    features=FeatureVector(var_ba=1.0, var_oa=0.0),
                )
            )

    def test_empty_index_and_empty_batch(self):
        index = ColumnarVarianceIndex()
        assert index.search(VarianceQuery(var_ba=1.0, var_oa=0.0)) == []
        assert index.search_batch([]) == []
        assert index.search_batch([VarianceQuery(var_ba=1.0, var_oa=0.0)]) == [[]]
        assert index.entries == ()

    def test_json_roundtrip_matches_legacy_document(self):
        entries = _corpus(4)
        columnar = ColumnarVarianceIndex(entries)
        legacy = SortedVarianceIndex(entries)
        assert columnar.to_dict() == legacy.to_dict()
        reloaded = ColumnarVarianceIndex.from_dict(legacy.to_dict())
        assert [e.to_row() for e in reloaded.entries] == [
            e.to_row() for e in legacy.entries
        ]

    def test_entries_is_cached_immutable_view(self):
        columnar = ColumnarVarianceIndex(_corpus(5, n=20))
        legacy = SortedVarianceIndex(_corpus(5, n=20))
        assert columnar.entries is columnar.entries  # no copy per access
        assert legacy.entries is legacy.entries
        assert isinstance(legacy.entries, tuple)

    def test_lookup_and_entries_for(self):
        entries = _corpus(6, n=40)
        columnar = ColumnarVarianceIndex(entries)
        probe = entries[7]
        found = columnar.lookup(probe.video_id, probe.shot_number)
        assert found is not None and found.to_row() == probe.to_row()
        assert columnar.lookup("no-such-video", 1) is None
        per_video = columnar.entries_for(probe.video_id)
        assert all(e.video_id == probe.video_id for e in per_video)
        assert len(per_video) == sum(
            1 for e in entries if e.video_id == probe.video_id
        )
        assert columnar.entries_for("no-such-video") == []


class TestQueryCaching:
    def test_cached_sqrt_fields_match_math(self):
        query = VarianceQuery(var_ba=144.0, var_oa=64.0)
        assert query.sqrt_var_ba == math.sqrt(144.0)
        assert query.d_v == math.sqrt(144.0) - math.sqrt(64.0)

    def test_equality_and_hash_ignore_cached_fields(self):
        assert VarianceQuery(var_ba=2.0, var_oa=1.0) == VarianceQuery(
            var_ba=2.0, var_oa=1.0
        )
        assert hash(VarianceQuery(var_ba=2.0, var_oa=1.0)) == hash(
            VarianceQuery(var_ba=2.0, var_oa=1.0)
        )


@pytest.mark.cluster
class TestBatchThroughCluster:
    def _corpus_records(self, seed, n_videos):
        records = []
        rng = np.random.default_rng(seed)
        for k in range(n_videos):
            video_id = f"corpus-{seed}-{k:03d}"
            scratch = VideoDatabase()
            add_synth_video(scratch, video_id, rng)
            records.append(scratch.export_video(video_id))
        return records

    def _decisions(self, answer):
        return [
            (m.video_id, m.shot_number, r.suggestion)
            for m, r in zip(answer.matches, answer.routes)
        ]

    def test_cluster_batch_matches_single_database(self):
        records = self._corpus_records(seed=31, n_videos=18)
        single = VideoDatabase()
        cluster = ClusterCoordinator.ephemeral(3)
        for record in records:
            single.adopt(record)
            cluster.adopt(record)
        points = [
            (e.features.var_ba, e.features.var_oa)
            for e in single.index.entries[::5]
        ]
        expected = [self._decisions(a) for a in single.query_batch(points, limit=8)]
        got = cluster.query_batch(points, limit=8)
        assert [self._decisions(a) for a in got] == expected
        assert all(not a.partial for a in got)
        # Batch-of-B ≡ B sequential cluster singles too.
        sequential = [
            self._decisions(cluster.query(b, o, limit=8)) for b, o in points
        ]
        assert [self._decisions(a) for a in got] == sequential

    @pytest.mark.rebalance
    def test_cluster_batch_identical_during_and_after_rebalance(self):
        records = self._corpus_records(seed=32, n_videos=16)
        single = VideoDatabase()
        cluster = ClusterCoordinator.ephemeral(4)
        for record in records:
            single.adopt(record)
            cluster.adopt(record)
        points = [
            (e.features.var_ba, e.features.var_oa)
            for e in single.index.entries[::6]
        ]
        expected = [self._decisions(a) for a in single.query_batch(points, limit=10)]

        failures: list[str] = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                answers = cluster.query_batch(points, limit=10)
                if [self._decisions(a) for a in answers] != expected:
                    failures.append("divergence during rebalance")
                if any(a.partial for a in answers):
                    failures.append("partial answer during rebalance")

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            rebalancer = Rebalancer(cluster)
            rebalancer.reshard(2)
            rebalancer.reshard(4)
        finally:
            stop.set()
            thread.join(timeout=60)
        assert not failures, failures[:5]
        after = cluster.query_batch(points, limit=10)
        assert [self._decisions(a) for a in after] == expected
